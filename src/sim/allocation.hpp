/**
 * @file
 * Resource allocation descriptors.
 *
 * An Allocation is what the server manager hands an application: a
 * disjoint set of cores (taskset), a set of LLC ways (Intel CAT), a
 * per-core frequency (cpupowerutils), and a CPU duty cycle (cgroup
 * cpu.cfs_quota-style execution-time limiting, the paper's second
 * throttling knob). Isolation is perfect by construction, matching the
 * paper's use of hardware partitioning.
 */

#pragma once

#include <string>

#include "sim/server_spec.hpp"
#include "util/units.hpp"

namespace poco::sim
{

/** Resources granted to one application on one server. */
struct Allocation
{
    /** Number of dedicated cores (0 = application is parked). */
    int cores = 0;

    /** Number of dedicated LLC ways. */
    int ways = 0;

    /** Frequency of the granted cores. */
    GHz freq{2.2};

    /**
     * Fraction of CPU time the granted cores may execute, in (0, 1].
     * Used only for best-effort throttling; primaries always run at 1.
     */
    double dutyCycle = 1.0;

    bool
    operator==(const Allocation& other) const
    {
        return cores == other.cores && ways == other.ways &&
               freq == other.freq && dutyCycle == other.dutyCycle;
    }

    /** True when the allocation grants no execution resources. */
    bool empty() const { return cores == 0 || ways == 0; }

    /** Validate against a server spec; throws FatalError when invalid. */
    void validate(const ServerSpec& spec) const;

    /** Human-readable rendering, e.g. "4c/6w@2.0GHz d=1.00". */
    std::string toString() const;
};

/**
 * Check that two allocations can coexist on @p spec (resource sums
 * within capacity). Frequencies may differ: DVFS is per-core.
 */
bool fits(const Allocation& a, const Allocation& b,
          const ServerSpec& spec);

/**
 * The spare resources remaining on @p spec after @p used is granted.
 * The result runs at the spec's maximum frequency with full duty.
 */
Allocation spareOf(const Allocation& used, const ServerSpec& spec);

} // namespace poco::sim
