/**
 * @file
 * Additive server power model.
 *
 * The paper's premise (Eq. 2) is that total server power is additive
 * over the direct resources each application holds:
 *
 *   P_server = P_static + sum_apps P_app(allocation, activity)
 *
 * Each application contributes per-core dynamic power (scaling with
 * DVFS frequency, duty cycle, and utilization), per-way LLC power
 * (part leakage, part activity), and a constant activity term (uncore
 * and DRAM traffic). A mild core-way interaction models memory-bound
 * stalls: an app starved of LLC ways draws less core power because its
 * pipelines stall. This keeps the ground truth *close to* but not
 * *exactly* the linear form Pocolo fits, so fitted R-squared lands in
 * the paper's reported 0.8-0.98 band instead of at 1.0.
 *
 * This module replaces the paper's Intel RAPL socket/DRAM meters.
 */

#pragma once

#include <vector>

#include "sim/allocation.hpp"
#include "sim/server_spec.hpp"
#include "util/units.hpp"

namespace poco::sim
{

/** Per-application power coefficients (the ground-truth "p_j"s). */
struct PowerIntensity
{
    /** Watts drawn by one fully utilized core at freqMax, duty 1. */
    Watts corePeak{6.0};

    /** Watts attributable to one allocated LLC way at full activity. */
    Watts wayPower{2.0};

    /** Constant activity power (uncore/DRAM) while the app runs. */
    Watts basePower;

    /**
     * Exponent of the (freq / freqMax) dynamic-power term. Classic
     * V-f scaling gives ~f^3 at constant voltage margins; measured
     * server cores land nearer 2-2.5 across their DVFS range.
     */
    double freqExponent = 2.4;

    /** Fraction of way power that scales with activity (rest leaks). */
    double wayActivityShare = 0.5;

    /**
     * Strength of the stall interaction in [0, 1): core power is
     * scaled by (1 - stallFactor * (1 - ways/totalWays)^2). Zero means
     * purely additive (exactly the fitted model's form).
     */
    double stallFactor = 0.0;
};

/** An application's contribution input: who holds what, how busy. */
struct PowerDraw
{
    PowerIntensity intensity;
    Allocation alloc;
    /** Fraction of granted core time actually busy, in [0, 1]. */
    double utilization = 1.0;
};

/**
 * Computes instantaneous server power from per-app draws.
 *
 * Stateless aside from the server spec; meters integrate over time.
 */
class PowerModel
{
  public:
    explicit PowerModel(ServerSpec spec);

    const ServerSpec& spec() const { return spec_; }

    /**
     * Power one application contributes on top of static power.
     *
     * @param draw The app's coefficients, allocation, and utilization.
     */
    Watts appPower(const PowerDraw& draw) const;

    /** Total server power: idle/static plus every app's contribution. */
    Watts serverPower(const std::vector<PowerDraw>& draws) const;

  private:
    ServerSpec spec_;
};

} // namespace poco::sim
