/**
 * @file
 * Telemetry recorder.
 *
 * Today's private datacenters periodically collect per-application
 * performance and power metrics (the paper cites Dynamo and WSMeter).
 * The recorder stores timestamped samples and answers windowed
 * queries; Pocolo's profiler and the evaluation pipelines consume it.
 */

#pragma once

#include <deque>
#include <vector>

#include "sim/allocation.hpp"
#include "util/units.hpp"

namespace poco::sim
{

/** One telemetry sample for a server. */
struct TelemetrySample
{
    SimTime when = 0;

    /** Primary (latency-critical) application state. */
    Rps lcLoad;
    double lcLatencyP95 = 0.0;  ///< seconds
    double lcLatencyP99 = 0.0;  ///< seconds
    Allocation lcAlloc;

    /** Secondary (best-effort) application state. */
    Rps beThroughput;
    Allocation beAlloc;

    /** Server power draw at the sample instant. */
    Watts power;
};

/** Bounded in-memory time series of telemetry samples. */
class TelemetryRecorder
{
  public:
    /** @param capacity Maximum retained samples (FIFO eviction). */
    explicit TelemetryRecorder(std::size_t capacity = 1 << 20);

    /** Append a sample; timestamps must be non-decreasing. */
    void record(TelemetrySample sample);

    std::size_t size() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    const TelemetrySample& latest() const;

    /**
     * All samples with when >= @p since, oldest first. Timestamps
     * are non-decreasing, so the window starts at a binary-searched
     * position (O(log n) + copy) rather than a full scan.
     */
    std::vector<TelemetrySample> since(SimTime since) const;

    /** Mean server power over samples with when >= @p since. */
    Watts averagePower(SimTime since) const;

    /** Mean best-effort throughput over samples with when >= since. */
    Rps averageBeThroughput(SimTime since) const;

    const std::deque<TelemetrySample>& all() const { return samples_; }

  private:
    std::size_t capacity_;
    std::deque<TelemetrySample> samples_;
};

} // namespace poco::sim
