/**
 * @file
 * Discrete-event simulation core.
 *
 * A minimal calendar: events are (time, sequence, callback) triples
 * executed in time order, with the sequence number breaking ties so
 * same-timestamp events run in scheduling order (deterministic runs).
 * Controllers reschedule themselves to form periodic loops.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/units.hpp"

namespace poco::sim
{

/** Time-ordered event calendar with cancellation. */
class EventQueue
{
  public:
    using EventId = std::uint64_t;
    using Callback = std::function<void(SimTime)>;

    /** Current simulated time (microseconds). */
    SimTime now() const { return now_; }

    /**
     * Schedule a callback at an absolute time.
     *
     * @param when Absolute time, must be >= now().
     * @param callback Invoked with the event's timestamp.
     * @return Id usable with cancel().
     */
    EventId schedule(SimTime when, Callback callback);

    /** Schedule a callback @p delay after now(). */
    EventId scheduleAfter(SimTime delay, Callback callback);

    /** Cancel a pending event. Cancelling a fired event is a no-op. */
    void cancel(EventId id);

    /** Execute the next pending event. @return false if none remain. */
    bool runOne();

    /**
     * Run all events with timestamp <= deadline, then advance now() to
     * the deadline (so meters can integrate trailing intervals).
     *
     * @return Number of events executed.
     */
    std::size_t runUntil(SimTime deadline);

    /** Drain the calendar completely. @return events executed. */
    std::size_t runAll();

    bool empty() const;

  private:
    struct Event
    {
        SimTime when;
        EventId id;
        Callback callback;
    };

    struct Later
    {
        bool
        operator()(const Event& a, const Event& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;
        }
    };

    SimTime now_ = 0;
    EventId next_id_ = 1;
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    /** Ids scheduled but not yet fired or cancelled. */
    std::unordered_set<EventId> pending_;
    /** Ids cancelled while still sitting in queue_. */
    std::unordered_set<EventId> cancelled_;
};

} // namespace poco::sim
