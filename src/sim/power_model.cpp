#include "sim/power_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace poco::sim
{

PowerModel::PowerModel(ServerSpec spec) : spec_(std::move(spec))
{
    spec_.validate();
}

Watts
PowerModel::appPower(const PowerDraw& draw) const
{
    const PowerIntensity& pi = draw.intensity;
    const Allocation& alloc = draw.alloc;
    if (alloc.empty())
        return Watts{};
    alloc.validate(spec_);
    POCO_REQUIRE(draw.utilization >= 0.0 && draw.utilization <= 1.0,
                 "utilization must be in [0, 1]");

    const double freq_ratio = alloc.freq / spec_.freqMax;
    const double freq_scale = std::pow(freq_ratio, pi.freqExponent);
    const double activity = draw.utilization * alloc.dutyCycle;

    // Memory-bound stall interaction: fewer ways -> more stalls ->
    // lower core switching power.
    const double way_deficit =
        1.0 - static_cast<double>(alloc.ways) /
                  static_cast<double>(spec_.llcWays);
    const double stall_scale =
        1.0 - pi.stallFactor * way_deficit * way_deficit;

    const Watts core_power = static_cast<double>(alloc.cores) *
                             pi.corePeak * freq_scale * activity *
                             stall_scale;

    const double way_activity =
        pi.wayActivityShare * activity + (1.0 - pi.wayActivityShare);
    const Watts way_power =
        static_cast<double>(alloc.ways) * pi.wayPower * way_activity;

    const Watts base_power = pi.basePower * activity;

    return core_power + way_power + base_power;
}

Watts
PowerModel::serverPower(const std::vector<PowerDraw>& draws) const
{
    Watts total = spec_.idlePower;
    int cores_used = 0;
    int ways_used = 0;
    for (const auto& draw : draws) {
        total += appPower(draw);
        cores_used += draw.alloc.cores;
        ways_used += draw.alloc.ways;
    }
    POCO_REQUIRE(cores_used <= spec_.cores,
                 "aggregate core allocation exceeds server capacity");
    POCO_REQUIRE(ways_used <= spec_.llcWays,
                 "aggregate way allocation exceeds server capacity");
    return total;
}

} // namespace poco::sim
