#include "sim/server_spec.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace poco::sim
{

int
ServerSpec::freqSteps() const
{
    return static_cast<int>(
               std::round((freqMax - freqMin) / freqStep)) + 1;
}

GHz
ServerSpec::clampFreq(GHz f) const
{
    const GHz clamped = std::clamp(f, freqMin, freqMax);
    const double steps = std::round((clamped - freqMin) / freqStep);
    return freqMin + steps * freqStep;
}

GHz
ServerSpec::stepDown(GHz f) const
{
    return clampFreq(f - freqStep);
}

GHz
ServerSpec::stepUp(GHz f) const
{
    return clampFreq(f + freqStep);
}

void
ServerSpec::validate() const
{
    POCO_REQUIRE(cores > 0, "server must have at least one core");
    POCO_REQUIRE(llcWays > 0, "server must have at least one LLC way");
    POCO_REQUIRE(freqMin > GHz{} && freqMax >= freqMin,
                 "frequency range must be positive and ordered");
    POCO_REQUIRE(freqStep > GHz{}, "frequency step must be positive");
    POCO_REQUIRE(idlePower >= Watts{}, "idle power must be non-negative");
    POCO_REQUIRE(nominalActivePower >= idlePower,
                 "active power must be at least idle power");
}

ServerSpec
xeonE5_2650()
{
    // Values from Table I of the paper.
    return ServerSpec{};
}

} // namespace poco::sim
