/**
 * @file
 * Static description of a server platform.
 *
 * Mirrors the paper's Table I: an Intel Xeon E5-2650 class machine with
 * 12 cores, a 20-way 30 MB LLC, per-core DVFS between 1.2 and 2.2 GHz,
 * 50 W idle and ~135 W nominal active power. The provisioned power
 * capacity is per-deployment (right-sized to the primary application's
 * peak) and therefore lives outside this struct.
 */

#pragma once

#include <string>

#include "util/units.hpp"

namespace poco::sim
{

/** Immutable hardware parameters of one server. */
struct ServerSpec
{
    std::string name = "xeon-e5-2650";

    /** Physical core count (hyperthreading disabled, as in the paper). */
    int cores = 12;

    /** LLC way count (Intel CAT allocation granularity). */
    int llcWays = 20;

    /** LLC capacity in MiB (30 MB on the E5-2650). */
    double llcMegabytes = 30.0;

    /** DVFS range and step (cpupowerutils granularity). */
    GHz freqMin{1.2};
    GHz freqMax{2.2};
    GHz freqStep{0.1};

    /** Static platform power with all cores idle at min frequency. */
    Watts idlePower{50.0};

    /** Nominal all-core active power (Table I "Active"). */
    Watts nominalActivePower{135.0};

    /** Memory capacity in GiB (Table I). */
    double memoryGigabytes = 256.0;

    /** Number of discrete DVFS steps (inclusive of both endpoints). */
    int freqSteps() const;

    /** Clamp a frequency into [freqMin, freqMax], snapped to the grid. */
    GHz clampFreq(GHz f) const;

    /** One DVFS step below @p f (clamped at freqMin). */
    GHz stepDown(GHz f) const;

    /** One DVFS step above @p f (clamped at freqMax). */
    GHz stepUp(GHz f) const;

    /** Validate internal consistency; throws FatalError when broken. */
    void validate() const;
};

/** The default experimental platform used throughout the evaluation. */
ServerSpec xeonE5_2650();

} // namespace poco::sim
