/**
 * @file
 * Telemetry epoch rollups and the off-thread aggregator.
 *
 * Per-server TelemetryRecorders answer windowed queries, but the
 * evaluation pipelines used to issue those queries inline — every
 * sweep point paid a binary search plus a full window copy on the
 * simulation thread. The fleet layer aggregates instead: each run's
 * samples fold once into a compact EpochRollup (time-weighted power
 * and throughput integrals, cap-overshoot joules), rollups combine
 * in fixed server order into cluster totals, and clusters combine in
 * canonical cluster order into the fleet total.
 *
 * TelemetryAggregator schedules those folds. Within an epoch, each
 * evaluation task deposits samples into its own server-indexed slot
 * (slot exclusivity, no locks); sealEpoch() then moves the filled
 * buffers into a self-contained fold task — a Future on the shared
 * pool when async, an inline call when not. Both paths run the exact
 * same fold code in the exact same order, so async mode changes
 * wall-clock only, never a single output bit.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "runtime/parallel.hpp"
#include "sim/telemetry.hpp"
#include "util/units.hpp"

namespace poco::sim
{

/** Aggregates of one epoch's telemetry (server, cluster, or fleet). */
struct EpochRollup
{
    /** Epoch window the samples were folded over. */
    SimTime start = 0;
    SimTime end = 0;
    /** Samples folded in (summed across members on combine). */
    std::uint64_t samples = 0;
    /**
     * Time-weighted mean power over the window. Combining sums the
     * members, so a cluster/fleet rollup holds total mean draw.
     */
    Watts meanPower;
    /** Time-weighted mean BE throughput (summed on combine). */
    Rps meanBeThroughput;
    /** Integral of power over the window. */
    Joules energy;
    /** Integral of max(0, power - cap): budget violation severity. */
    Joules capOvershoot;
    /** Worst p99 latency seen in the window (seconds). */
    double maxLatencyP99 = 0.0;

    /** Fixed-order combine (member into aggregate). */
    EpochRollup& operator+=(const EpochRollup& other);
};

/**
 * Fold one server's samples over [start, end) against its power cap
 * @p cap. Samples are zero-order-hold: each holds until the next
 * sample (or the window end), matching PowerMeter's integration.
 */
EpochRollup foldTelemetry(const std::vector<TelemetrySample>& samples,
                          Watts cap, SimTime start, SimTime end);

/**
 * Double-buffered epoch aggregator.
 *
 * Threading contract: within an epoch, any task may call add() for
 * a server slot as long as no two tasks share a slot; sealEpoch()
 * and drain() belong to the coordinating thread, which must join
 * the epoch's tasks first (their writes become visible through that
 * join). Sealed buffers are immutable — the fold task owns them.
 */
class TelemetryAggregator
{
  public:
    /**
     * @param cluster_of_server cluster index for each server slot;
     *        its size fixes the fleet's server count.
     * @param clusters total cluster count (> every entry above).
     * @param pool Fold-task pool; null folds inline even when async.
     * @param async Fold off-thread (true) or inline at seal (false).
     */
    TelemetryAggregator(std::vector<std::size_t> cluster_of_server,
                        std::size_t clusters,
                        runtime::ThreadPool* pool, bool async);

    TelemetryAggregator(const TelemetryAggregator&) = delete;
    TelemetryAggregator& operator=(const TelemetryAggregator&) =
        delete;

    std::size_t servers() const { return cluster_of_server_.size(); }
    std::size_t clusters() const { return clusters_; }

    /**
     * Deposit @p samples for @p server into the current epoch's
     * front buffer. Slot-exclusive: one writer per server per epoch.
     */
    void add(std::size_t server,
             std::vector<TelemetrySample> samples, Watts cap);

    /**
     * Streaming hook: append a heartbeat-cadence *delta* — a few
     * samples pushed mid-epoch — to the server's front buffer. Same
     * slot-exclusivity contract as add(), but semantically the
     * writer calls it many times per epoch (the control plane pushes
     * one delta per re-placement), and pushes are counted so the
     * streaming tests can assert the cadence. Samples must arrive in
     * non-decreasing time order across pushes (the fold assumes it).
     */
    void appendDelta(std::size_t server,
                     std::vector<TelemetrySample> samples,
                     Watts cap);

    /** Total appendDelta() calls since construction (all slots). */
    std::uint64_t deltaPushes() const { return delta_pushes_; }

    /**
     * Seal the current epoch over [start, end): hand the filled
     * buffers to the fold (async: a Future on the pool; sync: run
     * here, which is the inline cost the async path avoids) and
     * reset the front buffers for the next epoch.
     */
    void sealEpoch(SimTime start, SimTime end);

    /** One sealed epoch's folded result. */
    struct EpochResult
    {
        /** Per-cluster rollups, canonical cluster order. */
        std::vector<EpochRollup> clusters;
        /** Fleet-wide rollup (clusters combined in order). */
        EpochRollup fleet;
        /** Wall-clock seconds the fold itself took (timing only). */
        double foldSeconds = 0.0;
    };

    /**
     * Collect every sealed epoch, in seal order, blocking on folds
     * still in flight. Leaves the aggregator empty and reusable.
     */
    std::vector<EpochResult> drain();

  private:
    struct ServerBuffer
    {
        std::vector<TelemetrySample> samples;
        Watts cap;
    };

    std::vector<std::size_t> cluster_of_server_;
    std::size_t clusters_;
    runtime::ThreadPool* pool_;
    bool async_;
    std::uint64_t delta_pushes_ = 0;
    std::vector<ServerBuffer> front_;
    /**
     * Sealed epochs in seal order. The fold tasks are self-contained
     * (they capture the buffers and an index copy, never `this`), so
     * async ones may still be folding while the front refills.
     */
    std::vector<runtime::Future<EpochResult>> pending_;
};

} // namespace poco::sim
