#include "sim/telemetry_rollup.hpp"

#include <algorithm>
#include <chrono>

#include "util/check.hpp"

namespace poco::sim
{

EpochRollup&
EpochRollup::operator+=(const EpochRollup& other)
{
    if (samples == 0) {
        start = other.start;
        end = other.end;
    } else if (other.samples != 0) {
        start = std::min(start, other.start);
        end = std::max(end, other.end);
    }
    samples += other.samples;
    meanPower += other.meanPower;
    meanBeThroughput += other.meanBeThroughput;
    energy += other.energy;
    capOvershoot += other.capOvershoot;
    maxLatencyP99 = std::max(maxLatencyP99, other.maxLatencyP99);
    return *this;
}

EpochRollup
foldTelemetry(const std::vector<TelemetrySample>& samples, Watts cap,
              SimTime start, SimTime end)
{
    POCO_REQUIRE(end > start, "epoch window must be non-empty");
    EpochRollup rollup;
    rollup.start = start;
    rollup.end = end;

    // Samples are time-sorted; find the window by binary search —
    // the sample at or before `start` still holds at the window
    // open (zero-order hold).
    auto lo = std::lower_bound(
        samples.begin(), samples.end(), start,
        [](const TelemetrySample& s, SimTime t) {
            return s.when < t;
        });
    if (lo != samples.begin() && (lo == samples.end() ||
                                  lo->when > start))
        --lo;

    double energy_j = 0.0;
    double overshoot_j = 0.0;
    double be_units = 0.0;
    for (auto it = lo; it != samples.end() && it->when < end; ++it) {
        const SimTime hold_from = std::max(it->when, start);
        const SimTime hold_to =
            std::next(it) != samples.end()
                ? std::min(std::next(it)->when, end)
                : end;
        if (hold_to <= hold_from)
            continue;
        const double dt = toSeconds(hold_to - hold_from);
        energy_j += it->power.value() * dt;
        overshoot_j +=
            std::max(0.0, (it->power - cap).value()) * dt;
        be_units += it->beThroughput.value() * dt;
        rollup.maxLatencyP99 =
            std::max(rollup.maxLatencyP99, it->lcLatencyP99);
        ++rollup.samples;
    }
    const double window = toSeconds(end - start);
    rollup.energy = Joules{energy_j};
    rollup.capOvershoot = Joules{overshoot_j};
    rollup.meanPower = Watts{energy_j / window};
    rollup.meanBeThroughput = Rps{be_units / window};
    return rollup;
}

TelemetryAggregator::TelemetryAggregator(
    std::vector<std::size_t> cluster_of_server, std::size_t clusters,
    runtime::ThreadPool* pool, bool async)
    : cluster_of_server_(std::move(cluster_of_server)),
      clusters_(clusters), pool_(pool), async_(async),
      front_(cluster_of_server_.size())
{
    POCO_REQUIRE(clusters_ > 0, "aggregator needs a cluster");
    for (const std::size_t c : cluster_of_server_)
        POCO_REQUIRE(c < clusters_,
                     "server mapped to a cluster out of range");
}

void
TelemetryAggregator::add(std::size_t server,
                         std::vector<TelemetrySample> samples,
                         Watts cap)
{
    POCO_REQUIRE(server < front_.size(),
                 "telemetry server slot out of range");
    ServerBuffer& slot = front_[server];
    slot.cap = cap;
    if (slot.samples.empty()) {
        slot.samples = std::move(samples);
    } else {
        slot.samples.insert(slot.samples.end(), samples.begin(),
                            samples.end());
    }
}

void
TelemetryAggregator::appendDelta(std::size_t server,
                                 std::vector<TelemetrySample> samples,
                                 Watts cap)
{
    POCO_REQUIRE(server < front_.size(),
                 "telemetry server slot out of range");
    if (!front_[server].samples.empty() && !samples.empty())
        POCO_REQUIRE(front_[server].samples.back().when <=
                         samples.front().when,
                     "telemetry deltas must arrive in time order");
    ++delta_pushes_;
    add(server, std::move(samples), cap);
}

void
TelemetryAggregator::sealEpoch(SimTime start, SimTime end)
{
    // Move the filled buffers into a self-contained task: it owns
    // everything it reads, so the front can refill immediately and
    // the aggregator can even be destroyed while folds run.
    std::vector<ServerBuffer> sealed(front_.size());
    sealed.swap(front_);
    auto task = [sealed = std::move(sealed),
                 cluster_of = cluster_of_server_,
                 n_clusters = clusters_, start, end]() {
        const auto t0 = std::chrono::steady_clock::now();
        EpochResult result;
        result.clusters.resize(n_clusters);
        for (auto& rollup : result.clusters) {
            rollup.start = start;
            rollup.end = end;
        }
        // Per-server folds combine in server-index order, clusters
        // combine in canonical cluster order: the result is a pure
        // function of the sealed buffers, independent of which
        // thread folds or when.
        for (std::size_t s = 0; s < sealed.size(); ++s) {
            if (sealed[s].samples.empty())
                continue;
            result.clusters[cluster_of[s]] += foldTelemetry(
                sealed[s].samples, sealed[s].cap, start, end);
        }
        result.fleet.start = start;
        result.fleet.end = end;
        for (const EpochRollup& rollup : result.clusters)
            result.fleet += rollup;
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - t0;
        result.foldSeconds = elapsed.count();
        return result;
    };
    // Async: a Future on the pool, folding while the next epoch
    // simulates. Sync: a null-pool launch runs the same task inline
    // right here — that inline time is what async mode removes.
    pending_.push_back(runtime::Future<EpochResult>::launch(
        async_ ? pool_ : nullptr, std::move(task)));
}

std::vector<TelemetryAggregator::EpochResult>
TelemetryAggregator::drain()
{
    std::vector<EpochResult> results;
    results.reserve(pending_.size());
    for (auto& future : pending_)
        results.push_back(future.get());
    pending_.clear();
    return results;
}

} // namespace poco::sim
