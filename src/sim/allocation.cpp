#include "sim/allocation.hpp"

#include <sstream>

#include "util/check.hpp"
#include "util/table.hpp"

namespace poco::sim
{

void
Allocation::validate(const ServerSpec& spec) const
{
    POCO_REQUIRE(cores >= 0 && cores <= spec.cores,
                 "core allocation out of range");
    POCO_REQUIRE(ways >= 0 && ways <= spec.llcWays,
                 "way allocation out of range");
    POCO_REQUIRE(freq >= spec.freqMin - GHz{1e-9} &&
                 freq <= spec.freqMax + GHz{1e-9},
                 "frequency out of range");
    POCO_REQUIRE(dutyCycle > 0.0 && dutyCycle <= 1.0,
                 "duty cycle must be in (0, 1]");
}

std::string
Allocation::toString() const
{
    std::ostringstream out;
    out << cores << "c/" << ways << "w@" << fmt(freq, 1) << "GHz d="
        << fmt(dutyCycle, 2);
    return out.str();
}

bool
fits(const Allocation& a, const Allocation& b, const ServerSpec& spec)
{
    return a.cores + b.cores <= spec.cores &&
           a.ways + b.ways <= spec.llcWays;
}

Allocation
spareOf(const Allocation& used, const ServerSpec& spec)
{
    used.validate(spec);
    Allocation spare;
    spare.cores = spec.cores - used.cores;
    spare.ways = spec.llcWays - used.ways;
    spare.freq = spec.freqMax;
    spare.dutyCycle = 1.0;
    return spare;
}

} // namespace poco::sim
