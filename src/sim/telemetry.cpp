#include "sim/telemetry.hpp"

#include "util/check.hpp"

namespace poco::sim
{

TelemetryRecorder::TelemetryRecorder(std::size_t capacity)
    : capacity_(capacity)
{
    POCO_REQUIRE(capacity > 0, "telemetry capacity must be positive");
}

void
TelemetryRecorder::record(TelemetrySample sample)
{
    POCO_REQUIRE(samples_.empty() || sample.when >= samples_.back().when,
                 "telemetry samples must be time-ordered");
    if (samples_.size() == capacity_)
        samples_.pop_front();
    samples_.push_back(std::move(sample));
}

const TelemetrySample&
TelemetryRecorder::latest() const
{
    POCO_REQUIRE(!samples_.empty(), "no telemetry recorded yet");
    return samples_.back();
}

std::vector<TelemetrySample>
TelemetryRecorder::since(SimTime since) const
{
    std::vector<TelemetrySample> out;
    for (const auto& s : samples_)
        if (s.when >= since)
            out.push_back(s);
    return out;
}

Watts
TelemetryRecorder::averagePower(SimTime since) const
{
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& s : samples_) {
        if (s.when >= since) {
            sum += s.power;
            ++n;
        }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

Rps
TelemetryRecorder::averageBeThroughput(SimTime since) const
{
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& s : samples_) {
        if (s.when >= since) {
            sum += s.beThroughput;
            ++n;
        }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

} // namespace poco::sim
