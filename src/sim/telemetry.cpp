#include "sim/telemetry.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace poco::sim
{

namespace
{

/**
 * First sample with when >= since. Timestamps are non-decreasing
 * (enforced by record()), so the windowed queries binary-search the
 * deque instead of scanning it.
 */
std::deque<TelemetrySample>::const_iterator
firstAtOrAfter(const std::deque<TelemetrySample>& samples,
               SimTime since)
{
    return std::lower_bound(samples.begin(), samples.end(), since,
                            [](const TelemetrySample& s, SimTime t) {
                                return s.when < t;
                            });
}

} // namespace

TelemetryRecorder::TelemetryRecorder(std::size_t capacity)
    : capacity_(capacity)
{
    POCO_REQUIRE(capacity > 0, "telemetry capacity must be positive");
}

void
TelemetryRecorder::record(TelemetrySample sample)
{
    POCO_REQUIRE(samples_.empty() || sample.when >= samples_.back().when,
                 "telemetry samples must be time-ordered");
    if (samples_.size() == capacity_)
        samples_.pop_front();
    samples_.push_back(std::move(sample));
}

const TelemetrySample&
TelemetryRecorder::latest() const
{
    POCO_REQUIRE(!samples_.empty(), "no telemetry recorded yet");
    return samples_.back();
}

std::vector<TelemetrySample>
TelemetryRecorder::since(SimTime since) const
{
    return {firstAtOrAfter(samples_, since), samples_.end()};
}

Watts
TelemetryRecorder::averagePower(SimTime since) const
{
    Watts sum;
    std::size_t n = 0;
    for (auto it = firstAtOrAfter(samples_, since);
         it != samples_.end(); ++it) {
        sum += it->power;
        ++n;
    }
    return n ? sum / static_cast<double>(n) : Watts{};
}

Rps
TelemetryRecorder::averageBeThroughput(SimTime since) const
{
    Rps sum;
    std::size_t n = 0;
    for (auto it = firstAtOrAfter(samples_, since);
         it != samples_.end(); ++it) {
        sum += it->beThroughput;
        ++n;
    }
    return n ? sum / static_cast<double>(n) : Rps{};
}

} // namespace poco::sim
