#include "sim/power_meter.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace poco::sim
{

PowerMeter::PowerMeter(SimTime retention) : retention_(retention)
{
    POCO_REQUIRE(retention > 0, "retention must be positive");
    history_.push_back(Segment{0, Watts{}});
}

void
PowerMeter::setPower(SimTime when, Watts watts)
{
    POCO_REQUIRE(when >= last_change_,
                 "power meter updates must be time-ordered");
    POCO_REQUIRE(std::isfinite(watts.value()),
                 "power must be finite (got NaN or infinity)");
    POCO_REQUIRE(watts >= Watts{}, "power must be non-negative");
    if (watts == current_)
        return;
    history_.push_back(Segment{when, watts});
    current_ = watts;
    last_change_ = when;
    prune(when);
}

void
PowerMeter::prune(SimTime now)
{
    // Fold segments that ended before (now - retention) into the
    // energy accumulator so window queries stay O(window changes).
    const SimTime horizon = now - retention_;
    while (history_.size() > 1 && history_[1].start <= horizon) {
        const Segment& first = history_.front();
        const SimTime end = history_[1].start;
        folded_joules_ +=
            first.watts * simSeconds(end - std::max(first.start,
                                                    folded_until_));
        folded_until_ = end;
        history_.pop_front();
    }
}

Watts
PowerMeter::average(SimTime now, SimTime window) const
{
    POCO_REQUIRE(window > 0, "window must be positive");
    POCO_REQUIRE(now >= last_change_,
                 "query time precedes last recorded change");
    const SimTime begin = std::max<SimTime>(0, now - window);
    if (now == begin)
        return current_;

    Joules joules;
    for (std::size_t i = 0; i < history_.size(); ++i) {
        const SimTime seg_start = history_[i].start;
        const SimTime seg_end =
            (i + 1 < history_.size()) ? history_[i + 1].start : now;
        const SimTime lo = std::max(seg_start, begin);
        const SimTime hi = std::min(seg_end, now);
        if (hi > lo)
            joules += history_[i].watts * simSeconds(hi - lo);
    }
    return joules / simSeconds(now - begin);
}

Joules
PowerMeter::energyJoules(SimTime now) const
{
    POCO_REQUIRE(now >= last_change_,
                 "query time precedes last recorded change");
    Joules joules = folded_joules_;
    for (std::size_t i = 0; i < history_.size(); ++i) {
        const SimTime seg_start =
            std::max(history_[i].start, folded_until_);
        const SimTime seg_end =
            (i + 1 < history_.size()) ? history_[i + 1].start : now;
        if (seg_end > seg_start)
            joules +=
                history_[i].watts * simSeconds(seg_end - seg_start);
    }
    return joules;
}

} // namespace poco::sim
