/**
 * @file
 * Windowed power meter.
 *
 * Plays the role of the paper's socket power meter: the server's
 * instantaneous power is a step function of time (it changes only when
 * an allocation or load changes), and managers query the average draw
 * over a trailing window (the BE throttler samples every 100 ms). The
 * meter also integrates total energy for the TCO analysis.
 */

#pragma once

#include <deque>

#include "util/units.hpp"

namespace poco::sim
{

/** Integrates a piecewise-constant power signal over simulated time. */
class PowerMeter
{
  public:
    /**
     * @param retention How much history to keep for window queries.
     *                  Older segments are folded into the energy total.
     */
    explicit PowerMeter(SimTime retention = 10 * kSecond);

    /**
     * Record that power changed to @p watts at time @p when.
     * Times must be non-decreasing across calls.
     */
    void setPower(SimTime when, Watts watts);

    /** The most recently recorded instantaneous power. */
    Watts instantaneous() const { return current_; }

    /**
     * Average power over [now - window, now].
     *
     * @param now Current time; must be >= the last setPower() time.
     * @param window Length of the trailing window; must be > 0.
     */
    Watts average(SimTime now, SimTime window) const;

    /** Total energy from time zero through @p now. */
    Joules energyJoules(SimTime now) const;

  private:
    struct Segment
    {
        SimTime start;
        Watts watts;
    };

    void prune(SimTime now);

    SimTime retention_;
    Watts current_;
    SimTime last_change_ = 0;
    /** Energy accumulated in segments older than the history. */
    Joules folded_joules_;
    SimTime folded_until_ = 0;
    std::deque<Segment> history_;
};

} // namespace poco::sim
