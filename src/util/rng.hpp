/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic pieces of the library (profiling noise, random
 * placement, workload jitter) draw from poco::Rng so that every
 * experiment is reproducible from a single seed. The generator is
 * xoshiro256** seeded via SplitMix64, which is fast, has a 256-bit
 * state, and passes BigCrush.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace poco
{

/**
 * SplitMix64: tiny generator used to expand a 64-bit seed into the
 * xoshiro state. Also useful on its own for cheap hashing.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    /** Next 64 random bits. */
    std::uint64_t next();

  private:
    std::uint64_t state_;
};

/**
 * xoshiro256** generator with convenience distributions.
 *
 * Not thread-safe; give each thread (or each simulated entity that
 * needs independent streams) its own instance, forked via split().
 */
class Rng
{
  public:
    /** Seed the 256-bit state from a single 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next 64 random bits. */
    std::uint64_t nextU64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). Requires lo <= hi. */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    int uniformInt(int lo, int hi);

    /** Standard normal via Box-Muller (cached second deviate). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /**
     * Lognormal multiplicative noise factor with median 1.
     *
     * @param sigma Standard deviation of the underlying normal; 0.05
     *              gives ~5% typical relative noise.
     */
    double noiseFactor(double sigma);

    /** Fisher-Yates shuffle of an index vector [0, n). */
    std::vector<int> permutation(int n);

    /**
     * Derive an independent generator. The child stream is decorrelated
     * from the parent by hashing the parent's next output.
     */
    Rng split();

    /**
     * Derive the independent child stream for task @p stream without
     * advancing the parent. The child depends only on the parent's
     * current state and the stream index, so parallel tasks that each
     * take split(taskIndex) draw exactly the streams the serial loop
     * would, in any execution order — this is what keeps parallel
     * evaluation bit-identical to serial (see poco::runtime).
     */
    Rng split(std::uint64_t stream) const;

  private:
    std::uint64_t s_[4];
};

} // namespace poco
