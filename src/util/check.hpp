/**
 * @file
 * Fatal/panic error helpers in the spirit of gem5's logging.hh.
 *
 * poco::fatal() is for user errors (bad configuration, invalid
 * arguments): it throws poco::FatalError, which callers may catch.
 * poco::panic() is for internal invariant violations (library bugs):
 * it aborts the process after printing a diagnostic.
 */

#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace poco
{

/** Exception thrown for user-caused errors (bad config, bad args). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& what_arg)
        : std::runtime_error(what_arg)
    {}
};

/**
 * Report a user error. Throws FatalError with the given message.
 *
 * @param msg Description of the configuration/argument problem.
 */
[[noreturn]] inline void
fatal(const std::string& msg)
{
    throw FatalError(msg);
}

/**
 * Report an internal bug and abort.
 *
 * @param msg Description of the violated invariant.
 */
[[noreturn]] void panic(const std::string& msg);

} // namespace poco

/**
 * Check a precondition that is the caller's responsibility; throws
 * FatalError on failure. Use for public-API argument validation.
 */
#define POCO_REQUIRE(cond, msg)                                            \
    do {                                                                   \
        if (!(cond)) {                                                     \
            std::ostringstream oss_;                                       \
            oss_ << "requirement failed: " << (msg) << " [" << #cond       \
                 << "] at " << __FILE__ << ":" << __LINE__;                \
            ::poco::fatal(oss_.str());                                     \
        }                                                                  \
    } while (0)

/**
 * Validate data that crosses the program boundary — CLI arguments,
 * file contents, environment values. Throws FatalError on failure,
 * like POCO_REQUIRE, but the diagnostic is phrased for the end user
 * ("invalid input") rather than for an API caller, and poco_lint's
 * `unchecked-parse` rule expects input parsing to funnel through
 * helpers built on this macro (see util/parse.hpp).
 */
#define POCO_CHECK(cond, msg)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            std::ostringstream oss_;                                       \
            oss_ << "invalid input: " << (msg);                            \
            ::poco::fatal(oss_.str());                                     \
        }                                                                  \
    } while (0)

/**
 * Check an internal invariant; aborts on failure. Use for conditions
 * that can only fail due to a bug inside the library.
 */
#define POCO_ASSERT(cond, msg)                                             \
    do {                                                                   \
        if (!(cond)) {                                                     \
            std::ostringstream oss_;                                       \
            oss_ << "invariant violated: " << (msg) << " [" << #cond       \
                 << "] at " << __FILE__ << ":" << __LINE__;                \
            ::poco::panic(oss_.str());                                     \
        }                                                                  \
    } while (0)
