/**
 * @file
 * Minimal leveled logger used across the pocolo library.
 *
 * The logger writes to an std::ostream sink (default: std::cerr) and
 * filters by severity. It is deliberately simple: simulation code logs
 * rarely (controllers log decisions at Debug level, benches at Info),
 * so no async machinery is needed.
 */

#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace poco
{

/** Severity levels, in increasing order of importance. */
enum class LogLevel
{
    Trace = 0,
    Debug = 1,
    Info = 2,
    Warn = 3,
    Error = 4,
    Off = 5,
};

/** Convert a level to its fixed-width display name. */
const char* logLevelName(LogLevel level);

/**
 * A leveled logger bound to an output stream.
 *
 * Loggers are cheap value-ish objects; the global logger returned by
 * poco::log() is what library code uses. Tests may construct their own
 * logger around a std::ostringstream to assert on output.
 */
class Logger
{
  public:
    /**
     * @param sink Stream that receives formatted records. Must outlive
     *             the logger.
     * @param level Minimum severity that is emitted.
     */
    explicit Logger(std::ostream& sink = std::cerr,
                    LogLevel level = LogLevel::Warn)
        : sink_(&sink), level_(level)
    {}

    LogLevel level() const { return level_; }
    void setLevel(LogLevel level) { level_ = level; }
    void setSink(std::ostream& sink) { sink_ = &sink; }

    /** True if a record at @p level would be emitted. */
    bool enabled(LogLevel level) const { return level >= level_; }

    /**
     * Emit one record.
     *
     * @param level Record severity.
     * @param component Short subsystem tag (e.g. "server", "cluster").
     * @param msg Pre-formatted message text.
     */
    void write(LogLevel level, const std::string& component,
               const std::string& msg);

  private:
    std::ostream* sink_;
    LogLevel level_;
};

/** The process-wide logger used by library code. */
Logger& log();

} // namespace poco

/** Log with lazy formatting: the stream expression only runs if enabled. */
#define POCO_LOG(level, component, expr)                                   \
    do {                                                                   \
        if (::poco::log().enabled(level)) {                                \
            std::ostringstream oss_;                                       \
            oss_ << expr;                                                  \
            ::poco::log().write(level, component, oss_.str());             \
        }                                                                  \
    } while (0)

#define POCO_TRACE(component, expr)                                        \
    POCO_LOG(::poco::LogLevel::Trace, component, expr)
#define POCO_DEBUG(component, expr)                                        \
    POCO_LOG(::poco::LogLevel::Debug, component, expr)
#define POCO_INFO(component, expr)                                         \
    POCO_LOG(::poco::LogLevel::Info, component, expr)
#define POCO_WARN(component, expr)                                         \
    POCO_LOG(::poco::LogLevel::Warn, component, expr)
#define POCO_ERROR(component, expr)                                        \
    POCO_LOG(::poco::LogLevel::Error, component, expr)
