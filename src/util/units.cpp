#include "util/units.hpp"

#include <iomanip>
#include <sstream>

namespace poco
{

std::string
formatTime(SimTime t)
{
    std::ostringstream out;
    out << std::fixed;
    if (t < kMillisecond) {
        out << t << "us";
    } else if (t < kSecond) {
        out << std::setprecision(3)
            << static_cast<double>(t) / kMillisecond << "ms";
    } else {
        out << std::setprecision(3) << toSeconds(t) << "s";
    }
    return out.str();
}

} // namespace poco
