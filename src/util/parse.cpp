#include "util/parse.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "util/check.hpp"

namespace poco
{

namespace
{

/** Shared token validation: non-empty and fully consumed. */
void
checkConsumed(const std::string& text, const char* end,
              const std::string& what)
{
    POCO_CHECK(!text.empty(), what + " is empty");
    POCO_CHECK(end == text.c_str() + text.size(),
               what + " is not a number: '" + text + "'");
}

} // namespace

double
parseDouble(const std::string& text, const std::string& what)
{
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    checkConsumed(text, end, what);
    POCO_CHECK(errno != ERANGE,
               what + " is out of range: '" + text + "'");
    POCO_CHECK(std::isfinite(value),
               what + " must be finite: '" + text + "'");
    return value;
}

int
parseInt(const std::string& text, const std::string& what)
{
    errno = 0;
    char* end = nullptr;
    const long value = std::strtol(text.c_str(), &end, 10);
    checkConsumed(text, end, what);
    POCO_CHECK(errno != ERANGE &&
                   value >= std::numeric_limits<int>::min() &&
                   value <= std::numeric_limits<int>::max(),
               what + " is out of range: '" + text + "'");
    return static_cast<int>(value);
}

std::uint64_t
parseU64(const std::string& text, const std::string& what)
{
    POCO_CHECK(text.find('-') == std::string::npos,
               what + " must be non-negative: '" + text + "'");
    errno = 0;
    char* end = nullptr;
    const unsigned long long value =
        std::strtoull(text.c_str(), &end, 10);
    checkConsumed(text, end, what);
    POCO_CHECK(errno != ERANGE,
               what + " is out of range: '" + text + "'");
    return static_cast<std::uint64_t>(value);
}

} // namespace poco
