#include "util/logging.hpp"

#include <cstdlib>

#include "util/check.hpp"

namespace poco
{

const char*
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Trace: return "TRACE";
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info:  return "INFO ";
      case LogLevel::Warn:  return "WARN ";
      case LogLevel::Error: return "ERROR";
      case LogLevel::Off:   return "OFF  ";
    }
    return "?????";
}

void
Logger::write(LogLevel level, const std::string& component,
              const std::string& msg)
{
    if (!enabled(level))
        return;
    (*sink_) << "[" << logLevelName(level) << "] " << component << ": "
             << msg << "\n";
}

Logger&
log()
{
    static Logger global;
    return global;
}

void
panic(const std::string& msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

} // namespace poco
