#include "util/rng.hpp"

#include <cmath>

#include "util/check.hpp"

namespace poco
{

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
SplitMix64::next()
{
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed)
{
    SplitMix64 sm(seed);
    for (auto& s : s_)
        s = sm.next();
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return (nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    POCO_REQUIRE(lo <= hi, "uniform range must satisfy lo <= hi");
    return lo + (hi - lo) * uniform();
}

int
Rng::uniformInt(int lo, int hi)
{
    POCO_REQUIRE(lo <= hi, "uniformInt range must satisfy lo <= hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<int>(nextU64() % span);
}

double
Rng::normal()
{
    // Box-Muller without caching: simpler and stateless; the extra
    // transcendental cost is irrelevant at our call rates.
    double u1 = uniform();
    while (u1 <= 0.0)
        u1 = uniform();
    const double u2 = uniform();
    constexpr double two_pi = 6.28318530717958647692;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

double
Rng::noiseFactor(double sigma)
{
    if (sigma <= 0.0)
        return 1.0;
    return std::exp(normal(0.0, sigma));
}

std::vector<int>
Rng::permutation(int n)
{
    POCO_REQUIRE(n >= 0, "permutation size must be non-negative");
    std::vector<int> idx(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        idx[static_cast<std::size_t>(i)] = i;
    for (int i = n - 1; i > 0; --i) {
        const int j = uniformInt(0, i);
        std::swap(idx[static_cast<std::size_t>(i)],
                  idx[static_cast<std::size_t>(j)]);
    }
    return idx;
}

Rng
Rng::split()
{
    return Rng(nextU64() ^ 0xdeadbeefcafef00dULL);
}

Rng
Rng::split(std::uint64_t stream) const
{
    // Fold the full 256-bit state with the stream index through
    // SplitMix64; the constructor expands the digest again, so
    // nearby stream indices yield fully decorrelated children.
    const std::uint64_t state_digest =
        s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ rotl(s_[3], 43);
    SplitMix64 sm(state_digest +
                  (stream + 1) * 0xd1342543de82ef95ULL);
    return Rng(sm.next());
}

} // namespace poco
