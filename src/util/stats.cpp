#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace poco
{

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStats::merge(const RunningStats& other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

double
SampleSet::mean() const
{
    return meanOf(samples_);
}

double
SampleSet::sum() const
{
    return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double
SampleSet::min() const
{
    if (samples_.empty())
        return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
}

double
SampleSet::max() const
{
    if (samples_.empty())
        return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

double
SampleSet::percentile(double p) const
{
    return percentileOf(samples_, p);
}

double
percentileOf(std::vector<double> samples, double p)
{
    POCO_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    if (samples.size() == 1)
        return samples.front();
    // Linear interpolation between closest ranks (the "exclusive"
    // variant clamped to the data range).
    const double rank =
        p / 100.0 * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - std::floor(rank);
    return samples[lo] + frac * (samples[hi] - samples[lo]);
}

double
meanOf(const std::vector<double>& samples)
{
    if (samples.empty())
        return 0.0;
    return std::accumulate(samples.begin(), samples.end(), 0.0) /
           static_cast<double>(samples.size());
}

double
rSquared(const std::vector<double>& observed,
         const std::vector<double>& predicted)
{
    POCO_REQUIRE(observed.size() == predicted.size(),
                 "rSquared needs equal-length vectors");
    POCO_REQUIRE(!observed.empty(), "rSquared needs at least one sample");
    const double mean = meanOf(observed);
    double ss_res = 0.0;
    double ss_tot = 0.0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
        const double res = observed[i] - predicted[i];
        const double dev = observed[i] - mean;
        ss_res += res * res;
        ss_tot += dev * dev;
    }
    if (ss_tot == 0.0)
        return ss_res == 0.0 ? 1.0 : 0.0;
    return 1.0 - ss_res / ss_tot;
}

} // namespace poco
