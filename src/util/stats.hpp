/**
 * @file
 * Summary statistics helpers: running moments, percentiles, and a
 * sample accumulator used by the telemetry and evaluation code.
 */

#pragma once

#include <cstddef>
#include <vector>

namespace poco
{

/**
 * Online mean/variance accumulator (Welford's algorithm).
 * Does not store samples; O(1) memory.
 */
class RunningStats
{
  public:
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Population variance (biased); 0 for fewer than 2 samples. */
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

    /** Merge another accumulator into this one (parallel Welford). */
    void merge(const RunningStats& other);

    void reset();

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A stored-sample accumulator supporting exact percentiles.
 *
 * Used for tail-latency tracking where the controller needs p95/p99
 * over a sliding window. Samples are kept in insertion order; the
 * percentile query sorts a scratch copy (windows are small: <= a few
 * thousand samples per control period).
 */
class SampleSet
{
  public:
    void add(double x) { samples_.push_back(x); }

    std::size_t size() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }
    void clear() { samples_.clear(); }

    double mean() const;
    double sum() const;
    double min() const;
    double max() const;

    /**
     * Exact percentile by linear interpolation between closest ranks.
     *
     * @param p Percentile in [0, 100].
     * @return The value at the p-th percentile; 0 if empty.
     */
    double percentile(double p) const;

    const std::vector<double>& samples() const { return samples_; }

  private:
    std::vector<double> samples_;
};

/** Percentile of an arbitrary sample vector (see SampleSet::percentile). */
double percentileOf(std::vector<double> samples, double p);

/** Arithmetic mean of a vector; 0 if empty. */
double meanOf(const std::vector<double>& samples);

/**
 * Coefficient of determination (R-squared) between observations and
 * model predictions. Returns 1 for a perfect fit; can be negative for
 * fits worse than the mean predictor.
 *
 * @param observed Ground-truth values.
 * @param predicted Model predictions, same length.
 */
double rSquared(const std::vector<double>& observed,
                const std::vector<double>& predicted);

} // namespace poco
