/**
 * @file
 * Unit vocabulary for the simulator and managers.
 *
 * Simulated time is kept in integer microseconds to keep event ordering
 * exact. Physical quantities — power, energy, frequency, throughput —
 * are carried by Quantity<Tag> strong types: construction from a bare
 * double is explicit, cross-unit assignment is a compile error, and the
 * only escape hatch back to a raw double is value(). Earlier revisions
 * used bare-double aliases on the theory that strong typedefs would be
 * overkill; the watt/joule bookkeeping at the heart of the power-capping
 * loop proved otherwise, so the compiler now enforces the accounting.
 *
 * Dimensional rules (see DESIGN.md section 11 for the full table):
 *   Watts  * Seconds -> Joules      Joules / Seconds -> Watts
 *   Joules / Watts   -> Seconds     Quantity / Quantity (same unit)
 *                                   -> dimensionless double
 *
 * Quantity's copy constructor is user-provided on purpose: the type is
 * not trivially copyable, so passing one through a C varargs call
 * (printf and friends) is ill-formed and the compiler flags every
 * format-string site that forgot .value().
 */

#pragma once

#include <cstdint>
#include <ostream>
#include <string>

namespace poco
{

/** Simulated time in microseconds. */
using SimTime = std::int64_t;

/**
 * A double tagged with its physical unit. Same-unit arithmetic and
 * scalar scaling are allowed; anything that would change or mix units
 * is either an explicit overload (e.g. Watts * Seconds) or a compile
 * error.
 */
template <typename Tag>
class Quantity
{
  public:
    constexpr Quantity() = default;
    constexpr explicit Quantity(double value) : value_(value) {}

    /**
     * Deliberately user-provided (not `= default`): this makes the
     * type non-trivially-copyable, so passing a Quantity through a C
     * varargs call (printf) is a compile error instead of silent UB.
     */
    constexpr Quantity(const Quantity& other) : value_(other.value_) {}
    constexpr Quantity& operator=(const Quantity& other) = default;

    /** The raw magnitude — the only way back to a bare double. */
    constexpr double value() const { return value_; }

    constexpr Quantity operator-() const { return Quantity{-value_}; }

    constexpr Quantity operator+(Quantity other) const
    {
        return Quantity{value_ + other.value_};
    }
    constexpr Quantity operator-(Quantity other) const
    {
        return Quantity{value_ - other.value_};
    }
    constexpr Quantity& operator+=(Quantity other)
    {
        value_ += other.value_;
        return *this;
    }
    constexpr Quantity& operator-=(Quantity other)
    {
        value_ -= other.value_;
        return *this;
    }

    /** Dimensionless scaling. */
    constexpr Quantity operator*(double scale) const
    {
        return Quantity{value_ * scale};
    }
    constexpr Quantity operator/(double scale) const
    {
        return Quantity{value_ / scale};
    }
    constexpr Quantity& operator*=(double scale)
    {
        value_ *= scale;
        return *this;
    }
    constexpr Quantity& operator/=(double scale)
    {
        value_ /= scale;
        return *this;
    }
    friend constexpr Quantity operator*(double scale, Quantity q)
    {
        return Quantity{scale * q.value_};
    }

    /** Ratio of two same-unit quantities is dimensionless. */
    constexpr double operator/(Quantity other) const
    {
        return value_ / other.value_;
    }

    friend constexpr bool operator==(Quantity, Quantity) = default;
    friend constexpr auto operator<=>(Quantity, Quantity) = default;

    friend std::ostream& operator<<(std::ostream& out, Quantity q)
    {
        return out << q.value_;
    }

  private:
    double value_ = 0.0;
};

/** Magnitude of a quantity, unit preserved. */
template <typename Tag>
constexpr Quantity<Tag>
abs(Quantity<Tag> q)
{
    return q.value() < 0.0 ? -q : q;
}

struct WattsTag
{};
struct JoulesTag
{};
struct GHzTag
{};
struct RpsTag
{};
struct SecondsTag
{};

/** Power in watts. */
using Watts = Quantity<WattsTag>;

/** Energy in joules. */
using Joules = Quantity<JoulesTag>;

/** Core frequency in GHz. */
using GHz = Quantity<GHzTag>;

/** Offered load / throughput in requests (or work units) per second. */
using Rps = Quantity<RpsTag>;

/** Wall-clock duration in (floating) seconds, for dimensional math. */
using Seconds = Quantity<SecondsTag>;

/** Power sustained for a duration is energy. */
constexpr Joules
operator*(Watts w, Seconds s)
{
    return Joules{w.value() * s.value()};
}
constexpr Joules
operator*(Seconds s, Watts w)
{
    return w * s;
}

/** Energy spread over a duration is power. */
constexpr Watts
operator/(Joules j, Seconds s)
{
    return Watts{j.value() / s.value()};
}

/** How long a given power level takes to spend an energy amount. */
constexpr Seconds
operator/(Joules j, Watts w)
{
    return Seconds{j.value() / w.value()};
}

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000;
constexpr SimTime kSecond = 1000 * 1000;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;

/** Convert a SimTime to (floating) seconds. */
constexpr double
toSeconds(SimTime t)
{
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

/** Convert a SimTime to a strongly-typed duration. */
constexpr Seconds
simSeconds(SimTime t)
{
    return Seconds{toSeconds(t)};
}

/** Convert (floating) seconds to SimTime, truncating to microseconds. */
constexpr SimTime
fromSeconds(double seconds)
{
    return static_cast<SimTime>(seconds * static_cast<double>(kSecond));
}

/** Render a SimTime as a human-readable string, e.g. "2.500s". */
std::string formatTime(SimTime t);

} // namespace poco
