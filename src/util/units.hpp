/**
 * @file
 * Unit vocabulary for the simulator and managers.
 *
 * Simulated time is kept in integer microseconds to keep event ordering
 * exact; power in watts; frequency in GHz. Strong typedefs would be
 * overkill for this codebase, but the aliases document intent at call
 * sites and the helpers centralize conversions.
 */

#pragma once

#include <cstdint>
#include <string>

namespace poco
{

/** Simulated time in microseconds. */
using SimTime = std::int64_t;

/** Power in watts. */
using Watts = double;

/** Core frequency in GHz. */
using GHz = double;

/** Offered load / throughput in requests (or work units) per second. */
using Rps = double;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000;
constexpr SimTime kSecond = 1000 * 1000;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;

/** Convert a SimTime to (floating) seconds. */
constexpr double
toSeconds(SimTime t)
{
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

/** Convert (floating) seconds to SimTime, truncating to microseconds. */
constexpr SimTime
fromSeconds(double seconds)
{
    return static_cast<SimTime>(seconds * static_cast<double>(kSecond));
}

/** Render a SimTime as a human-readable string, e.g. "2.500s". */
std::string formatTime(SimTime t);

} // namespace poco
