/**
 * @file
 * Clang thread-safety capability annotations (DESIGN.md §16).
 *
 * The determinism contract ("bit-identical replay for any thread or
 * shard count") used to rest entirely on runtime gates: the TSan
 * tiers only catch interleavings that actually execute, and the
 * fingerprint suites only catch divergence that actually happened.
 * These macros move the locking half of that contract into the type
 * system: every mutex in the tree is a declared *capability*, every
 * guarded member says which capability protects it, and Clang's
 * -Wthread-safety analysis proves at compile time that no access
 * slips past its lock. The `thread-safety` CI job builds the whole
 * tree with -Werror=thread-safety, so a missing lock is a build
 * break, not a flaky TSan report.
 *
 * On compilers without the capability attribute (GCC builds the
 * tier-1 matrix) every macro expands to nothing — the annotated
 * wrappers in runtime/mutex.hpp compile to plain std::mutex code
 * with zero overhead either way.
 *
 * Naming follows the Clang thread-safety attribute vocabulary; see
 * https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for the
 * underlying semantics.
 */

#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define POCO_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif

#ifndef POCO_THREAD_ANNOTATION
#define POCO_THREAD_ANNOTATION(x) // no-op outside Clang
#endif

/** Declares a class to BE a capability (e.g. a mutex wrapper). */
#define POCO_CAPABILITY(name) \
    POCO_THREAD_ANNOTATION(capability(name))

/** Declares an RAII class that acquires on ctor, releases on dtor. */
#define POCO_SCOPED_CAPABILITY \
    POCO_THREAD_ANNOTATION(scoped_lockable)

/** Member may only be touched while holding the given capability. */
#define POCO_GUARDED_BY(x) POCO_THREAD_ANNOTATION(guarded_by(x))

/** Pointee may only be touched while holding the given capability. */
#define POCO_PT_GUARDED_BY(x) \
    POCO_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function requires the capabilities to be held on entry (and does
 *  not release them). */
#define POCO_REQUIRES(...) \
    POCO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function acquires the capabilities and holds them on exit. */
#define POCO_ACQUIRE(...) \
    POCO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the capabilities (held on entry). */
#define POCO_RELEASE(...) \
    POCO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function acquires the capability iff it returns the given value. */
#define POCO_TRY_ACQUIRE(...) \
    POCO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Function may not be called while holding the capabilities (the
 *  anti-deadlock complement of POCO_REQUIRES). */
#define POCO_EXCLUDES(...) \
    POCO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Documents lock-ordering: this capability before those. */
#define POCO_ACQUIRED_BEFORE(...) \
    POCO_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/** Documents lock-ordering: this capability after those. */
#define POCO_ACQUIRED_AFTER(...) \
    POCO_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** Runtime assertion that the capability is held (the analysis
 *  trusts it from this point on — e.g. inside a wait predicate). */
#define POCO_ASSERT_CAPABILITY(x) \
    POCO_THREAD_ANNOTATION(assert_capability(x))

/** Function returns a reference to the given capability. */
#define POCO_RETURN_CAPABILITY(x) \
    POCO_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: disables the analysis for one function. Reserve for
 *  code the analysis cannot express; pair with a comment saying why. */
#define POCO_NO_THREAD_SAFETY_ANALYSIS \
    POCO_THREAD_ANNOTATION(no_thread_safety_analysis)
