/**
 * @file
 * Fixed-point power arithmetic in integer milliwatts.
 *
 * Budget splitting, donation, and granting are ledger operations:
 * every milliwatt handed out must come back in a conservation check.
 * Floating-point accumulation drifts by an ulp per operation, which
 * forces tolerance-laden checks; integer milliwatts make the ledger
 * exact — the conservation invariants in the fleet evaluator and the
 * cluster water-filler are plain integer equalities.
 *
 * 1 mW resolution spans +/- 9.2e12 kW in 64 bits, far beyond any
 * facility; all conversions are exact for budgets below that.
 */

#pragma once

#include <cmath>

#include "util/units.hpp"

namespace poco
{

/** Integer milliwatts (signed: donation ledgers go negative). */
using Milliwatts = long long;

/** Nearest integer milliwatts (round half away from zero). */
inline Milliwatts
toMilliwatts(Watts w)
{
    return std::llround(w.value() * 1000.0);
}

/**
 * Largest integer milliwatts not exceeding @p w. Use when crediting
 * a float-derived budget to the ledger: the ledger must never hold
 * more than the source amount, or granting it all back overshoots.
 */
inline Milliwatts
floorMilliwatts(Watts w)
{
    return static_cast<Milliwatts>(std::floor(w.value() * 1000.0));
}

/** Exact conversion back to watts (mw * 1e-3, one rounding). */
inline Watts
fromMilliwatts(Milliwatts mw)
{
    return Watts{static_cast<double>(mw) * 1e-3};
}

} // namespace poco
