/**
 * @file
 * Structured result wrapper for degradation-aware computations.
 *
 * Several layers of the system can succeed at different quality
 * levels: the placement fallback chain walks LP -> Hungarian ->
 * Greedy before settling for a preference-free assignment, the fleet
 * evaluator can finish an epoch with its power budget clamped, and
 * the fit-health gate can refuse to trust the preference matrix
 * entirely. Earlier revisions reported these side channels through
 * ad-hoc report structs and out-params; Outcome<T> carries them next
 * to the value itself so every caller sees *what* was computed and
 * *how much the result should be trusted* in one object.
 */

#pragma once

#include <utility>

namespace poco
{

/**
 * Which rung of the solver/degradation ladder produced a value.
 * Ordered from most to least preferred; larger enumerators mean a
 * deeper fallback.
 */
enum class SolverTier
{
    None,         ///< nothing ran (empty/unsolved outcome)
    Cached,       ///< exact hit in the assignment cache (no solve)
    Repair,       ///< incremental Hungarian repair of a prior optimum
    WarmLp,       ///< simplex warm-started from the retained basis
    Lp,           ///< LP assignment solve (primary path)
    Hungarian,    ///< exact combinatorial fallback
    Greedy,       ///< heuristic fallback (still preference-driven)
    Conservative, ///< preference-free terminal fallback
};

inline const char*
solverTierName(SolverTier tier)
{
    switch (tier) {
      case SolverTier::None:         return "none";
      case SolverTier::Cached:       return "cached";
      case SolverTier::Repair:       return "repair";
      case SolverTier::WarmLp:       return "warm-lp";
      case SolverTier::Lp:           return "lp";
      case SolverTier::Hungarian:    return "hungarian";
      case SolverTier::Greedy:       return "greedy";
      case SolverTier::Conservative: return "conservative";
    }
    return "?";
}

/** Of two tiers, the one further down the ladder. */
inline SolverTier
worseTier(SolverTier a, SolverTier b)
{
    return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

/** Degradation flags accumulated while producing a value. */
struct Degradation
{
    /** The preference-free terminal fallback produced the value. */
    bool conservative = false;
    /** The fit-health gate stopped trusting the fitted models. */
    bool modelsUntrusted = false;
    /** Work was shed (e.g. best-effort apps parked unplaced). */
    bool workShed = false;
    /** A power budget ran against its floor or ceiling. */
    bool budgetClamped = false;

    bool any() const
    {
        return conservative || modelsUntrusted || workShed ||
               budgetClamped;
    }

    /** Union of two flag sets (for aggregating sub-results). */
    Degradation operator|(const Degradation& other) const
    {
        Degradation merged;
        merged.conservative = conservative || other.conservative;
        merged.modelsUntrusted =
            modelsUntrusted || other.modelsUntrusted;
        merged.workShed = workShed || other.workShed;
        merged.budgetClamped = budgetClamped || other.budgetClamped;
        return merged;
    }
    Degradation& operator|=(const Degradation& other)
    {
        *this = *this | other;
        return *this;
    }
};

/**
 * A value plus the story of how it was obtained: the solver tier
 * that produced it, how many attempts the fallback chain spent, and
 * any degradation flags picked up along the way.
 *
 * [[nodiscard]]: an Outcome dropped on the floor silently discards
 * the degradation flags with it — exactly the failure mode the
 * fallback chain exists to report. The compiler warns on any
 * expression-statement discard; the poco_lint `discarded-outcome`
 * rule covers the fingerprint/conservesBudget family the same way.
 */
template <typename T>
struct [[nodiscard]] Outcome
{
    T value{};
    SolverTier tier = SolverTier::None;
    /** Total solver attempts across every fallback stage. */
    int attempts = 0;
    Degradation degradation;

    Outcome() = default;
    Outcome(T v, SolverTier t, int tries = 1, Degradation flags = {})
        : value(std::move(v)), tier(t), attempts(tries),
          degradation(flags)
    {}

    /** True when any degradation flag is set. */
    bool degraded() const { return degradation.any(); }
};

} // namespace poco
