/**
 * @file
 * Checked numeric parsing for data that crosses the program boundary.
 *
 * CLI arguments and file fields must not be fed to atoi/strtod
 * directly: those accept trailing junk, silently return 0, or invoke
 * UB on overflow. These helpers validate the whole token and throw
 * FatalError (via POCO_CHECK) with the offending text and a caller
 * supplied description. poco_lint's `unchecked-parse` rule bans the
 * raw primitives outside util/, so all input parsing funnels here.
 */

#pragma once

#include <cstdint>
#include <string>

namespace poco
{

/**
 * Parse @p text as a finite double; the entire token must be
 * consumed. Throws FatalError naming @p what on malformed input.
 */
double parseDouble(const std::string& text, const std::string& what);

/** Parse @p text as a decimal int; whole token, range checked. */
int parseInt(const std::string& text, const std::string& what);

/** Parse @p text as a decimal uint64; whole token, range checked. */
std::uint64_t parseU64(const std::string& text, const std::string& what);

} // namespace poco
