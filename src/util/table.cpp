#include "util/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/check.hpp"

namespace poco
{

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    POCO_REQUIRE(!header_.empty(), "table must have at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    POCO_REQUIRE(row.size() == header_.size(),
                 "row arity must match header");
    rows_.push_back(std::move(row));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << std::left << std::setw(static_cast<int>(widths[c]))
                << row[c];
            out << (c + 1 < row.size() ? "  " : "");
        }
        out << "\n";
    };
    emit_row(header_);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c) {
        rule.append(widths[c], '-');
        if (c + 1 < widths.size())
            rule.append("  ");
    }
    out << rule << "\n";
    for (const auto& row : rows_)
        emit_row(row);
    return out.str();
}

namespace
{

std::string
csvEscape(const std::string& field)
{
    if (field.find_first_of(",\"\n") == std::string::npos)
        return field;
    std::string out = "\"";
    for (char ch : field) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace

std::string
TextTable::renderCsv() const
{
    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << csvEscape(row[c]);
            if (c + 1 < row.size())
                out << ",";
        }
        out << "\n";
    };
    emit_row(header_);
    for (const auto& row : rows_)
        emit_row(row);
    return out.str();
}

std::string
fmt(double value, int precision)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision) << value;
    return out.str();
}

std::string
fmtPercent(double ratio, int precision)
{
    return fmt(ratio * 100.0, precision) + "%";
}

void
writeCsv(const TextTable& table, const std::string& path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open CSV output file: " + path);
    out << table.renderCsv();
    if (!out)
        fatal("error writing CSV output file: " + path);
}

} // namespace poco
