/**
 * @file
 * Text table and CSV rendering for benches and examples.
 *
 * The bench harness prints the same rows/series the paper's tables and
 * figures report; TextTable renders aligned console output and
 * writeCsv() emits the machine-readable twin.
 */

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace poco
{

/**
 * A simple column-aligned text table.
 *
 * Usage:
 * @code
 *   TextTable t({"app", "power (W)"});
 *   t.addRow({"xapian", "154.0"});
 *   std::cout << t.render();
 * @endcode
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    std::size_t rowCount() const { return rows_.size(); }

    /** Render with ASCII separators, right-padding each column. */
    std::string render() const;

    /** Render as CSV (comma-separated, quoted only when needed). */
    std::string renderCsv() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision (default 2 digits). */
std::string fmt(double value, int precision = 2);

/** Format a strongly-typed quantity's magnitude (unit implied). */
template <typename Tag>
std::string
fmt(Quantity<Tag> value, int precision = 2)
{
    return fmt(value.value(), precision);
}

/** Format a ratio as a percentage string, e.g. 0.18 -> "18.0%". */
std::string fmtPercent(double ratio, int precision = 1);

/** Write the CSV rendering of a table to a file; throws on I/O error. */
void writeCsv(const TextTable& table, const std::string& path);

} // namespace poco
