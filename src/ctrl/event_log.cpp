#include "ctrl/event_log.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <tuple>

#include "fault/fault_plan.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace poco::ctrl
{

namespace
{

bool
eventLess(const ControlEvent& a, const ControlEvent& b)
{
    return std::tie(a.tick, a.kind, a.subject, a.value) <
           std::tie(b.tick, b.kind, b.subject, b.value);
}

/** Exponential inter-arrival in ticks for @p rate events/second. */
SimTime
nextGap(Rng& rng, double rate)
{
    // Inverse-CDF sampling; floored at one tick so the log stays
    // strictly advancing even at silly rates.
    const double u = rng.uniform();
    const double seconds = -std::log(1.0 - u) / rate;
    const double ticks = seconds * static_cast<double>(kSecond);
    return std::max<SimTime>(1, static_cast<SimTime>(ticks));
}

} // namespace

const char*
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::LoadShift:     return "load-shift";
      case EventKind::BeArrive:      return "be-arrive";
      case EventKind::BeDepart:      return "be-depart";
      case EventKind::ServerCrash:   return "server-crash";
      case EventKind::ServerRecover: return "server-recover";
      case EventKind::BudgetChange:  return "budget-change";
    }
    return "?";
}

EventLog
EventLog::fromEvents(std::vector<ControlEvent> events)
{
    for (const ControlEvent& e : events)
        POCO_REQUIRE(e.tick >= 0, "event ticks must be non-negative");
    std::sort(events.begin(), events.end(), eventLess);
    EventLog log;
    log.events_ = std::move(events);
    return log;
}

EventLog
EventLog::generate(const EventLogConfig& config)
{
    POCO_REQUIRE(config.horizon > 0, "horizon must be positive");
    POCO_REQUIRE(config.servers >= 1, "need at least one server");
    POCO_REQUIRE(config.bePool >= 1, "need at least one BE");

    const Rng root(config.seed);
    std::vector<ControlEvent> events;

    // Each kind draws from its own split stream (keyed by the kind's
    // ordinal), so one kind's traffic never shifts another's ticks —
    // the FaultPlan (kind, server) pattern, collapsed to per-kind
    // because subjects here are drawn inside the stream.
    auto stream = [&root](EventKind kind) {
        return root.split(
            0x10001u + static_cast<std::uint64_t>(kind));
    };

    if (config.loadShiftRate > 0.0) {
        Rng rng = stream(EventKind::LoadShift);
        SimTime t = nextGap(rng, config.loadShiftRate);
        while (t < config.horizon) {
            ControlEvent e;
            e.tick = t;
            e.kind = EventKind::LoadShift;
            // Mostly single-server shifts; 1-in-8 moves every server
            // (the diurnal swing), exercising the full-refresh rung.
            e.subject = rng.bernoulli(0.125)
                            ? -1
                            : rng.uniformInt(0, config.servers - 1);
            e.value = rng.uniform(0.1, 0.95);
            events.push_back(e);
            t += nextGap(rng, config.loadShiftRate);
        }
    }

    if (config.beChurnRate > 0.0) {
        Rng rng = stream(EventKind::BeArrive);
        SimTime t = nextGap(rng, config.beChurnRate);
        while (t < config.horizon) {
            ControlEvent e;
            e.tick = t;
            // Alternate-ish churn: arrivals twice as likely as
            // departures keeps the cluster busy.
            e.kind = rng.bernoulli(2.0 / 3.0) ? EventKind::BeArrive
                                              : EventKind::BeDepart;
            e.subject = e.kind == EventKind::BeDepart
                            ? rng.uniformInt(0, config.bePool - 1)
                            : -1;
            events.push_back(e);
            t += nextGap(rng, config.beChurnRate);
        }
    }

    if (config.crashRate > 0.0) {
        Rng rng = stream(EventKind::ServerCrash);
        SimTime t = nextGap(rng, config.crashRate);
        while (t < config.horizon) {
            const int server =
                rng.uniformInt(0, config.servers - 1);
            ControlEvent crash;
            crash.tick = t;
            crash.kind = EventKind::ServerCrash;
            crash.subject = server;
            events.push_back(crash);

            const double mean =
                static_cast<double>(config.meanOutage);
            const double u = rng.uniform();
            const SimTime outage = std::max<SimTime>(
                1,
                static_cast<SimTime>(-std::log(1.0 - u) * mean));
            const SimTime back = t + outage;
            if (back < config.horizon) {
                ControlEvent recover;
                recover.tick = back;
                recover.kind = EventKind::ServerRecover;
                recover.subject = server;
                events.push_back(recover);
            }
            t += nextGap(rng, config.crashRate);
        }
    }

    if (config.budgetChangeRate > 0.0) {
        Rng rng = stream(EventKind::BudgetChange);
        SimTime t = nextGap(rng, config.budgetChangeRate);
        while (t < config.horizon) {
            ControlEvent e;
            e.tick = t;
            e.kind = EventKind::BudgetChange;
            e.value = rng.uniform(0.6, 1.2);
            events.push_back(e);
            t += nextGap(rng, config.budgetChangeRate);
        }
    }

    return fromEvents(std::move(events));
}

SimTime
EventLog::horizon() const
{
    return events_.empty() ? 0 : events_.back().tick;
}

std::uint64_t
EventLog::fingerprint() const
{
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t word) {
        for (int byte = 0; byte < 8; ++byte) {
            h ^= word & 0xffu;
            h *= 1099511628211ull;
            word >>= 8;
        }
    };
    for (const ControlEvent& e : events_) {
        mix(static_cast<std::uint64_t>(e.tick));
        mix(static_cast<std::uint64_t>(e.kind));
        mix(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(e.subject)));
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(e.value));
        std::memcpy(&bits, &e.value, sizeof(bits));
        mix(bits);
    }
    return h;
}

EventLog
eventsFromFaultPlan(const fault::FaultPlan& plan, int servers)
{
    POCO_REQUIRE(servers >= 1, "need at least one server");
    std::vector<ControlEvent> events;
    for (const fault::FaultWindow& w : plan.windows()) {
        if (w.kind != fault::FaultKind::ServerCrash)
            continue;
        const int first = w.server < 0 ? 0 : w.server;
        const int last = w.server < 0 ? servers - 1 : w.server;
        for (int s = first; s <= last; ++s) {
            ControlEvent crash;
            crash.tick = w.start;
            crash.kind = EventKind::ServerCrash;
            crash.subject = s;
            events.push_back(crash);
            ControlEvent recover;
            recover.tick = w.end;
            recover.kind = EventKind::ServerRecover;
            recover.subject = s;
            events.push_back(recover);
        }
    }
    return EventLog::fromEvents(std::move(events));
}

} // namespace poco::ctrl
