#include "ctrl/event_log.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <tuple>

#include "fault/fault_plan.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace poco::ctrl
{

namespace
{

bool
eventLess(const ControlEvent& a, const ControlEvent& b)
{
    return std::tie(a.tick, a.kind, a.subject, a.value) <
           std::tie(b.tick, b.kind, b.subject, b.value);
}

/** Exponential inter-arrival in ticks for @p rate events/second. */
SimTime
nextGap(Rng& rng, double rate)
{
    // Inverse-CDF sampling; floored at one tick so the log stays
    // strictly advancing even at silly rates.
    const double u = rng.uniform();
    const double seconds = -std::log(1.0 - u) / rate;
    const double ticks = seconds * static_cast<double>(kSecond);
    return std::max<SimTime>(1, static_cast<SimTime>(ticks));
}

} // namespace

const char*
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::LoadShift:     return "load-shift";
      case EventKind::BeArrive:      return "be-arrive";
      case EventKind::BeDepart:      return "be-depart";
      case EventKind::ServerCrash:   return "server-crash";
      case EventKind::ServerRecover: return "server-recover";
      case EventKind::BudgetChange:  return "budget-change";
    }
    return "?";
}

EventLog
EventLog::fromEvents(std::vector<ControlEvent> events)
{
    for (const ControlEvent& e : events)
        POCO_REQUIRE(e.tick >= 0, "event ticks must be non-negative");
    std::sort(events.begin(), events.end(), eventLess);
    EventLog log;
    log.events_ = std::move(events);
    return log;
}

EventLog
EventLog::merged(const EventLog& a, const EventLog& b)
{
    std::vector<ControlEvent> events;
    events.reserve(a.size() + b.size());
    events.insert(events.end(), a.events().begin(), a.events().end());
    events.insert(events.end(), b.events().begin(), b.events().end());
    return fromEvents(std::move(events));
}

EventLog
EventLog::generate(const EventLogConfig& config)
{
    POCO_REQUIRE(config.horizon > 0, "horizon must be positive");
    POCO_REQUIRE(config.servers >= 1, "need at least one server");
    POCO_REQUIRE(config.bePool >= 1, "need at least one BE");

    const Rng root(config.seed);
    std::vector<ControlEvent> events;
    // Expected event count: horizon seconds times the summed rates
    // (crashes emit a recover each). The generators below append at
    // most ~that many entries, so one reservation bounds the queue.
    const double per_second =
        config.loadShiftRate + config.beChurnRate +
        2.0 * config.crashRate + config.budgetChangeRate;
    events.reserve(static_cast<std::size_t>(
                       toSeconds(config.horizon) * per_second * 1.5) +
                   16);

    // Each kind draws from its own split stream (keyed by the kind's
    // ordinal), so one kind's traffic never shifts another's ticks —
    // the FaultPlan (kind, server) pattern, collapsed to per-kind
    // because subjects here are drawn inside the stream.
    auto stream = [&root](EventKind kind) {
        return root.split(
            0x10001u + static_cast<std::uint64_t>(kind));
    };

    if (config.loadShiftRate > 0.0) {
        Rng rng = stream(EventKind::LoadShift);
        SimTime t = nextGap(rng, config.loadShiftRate);
        while (t < config.horizon) {
            ControlEvent e;
            e.tick = t;
            e.kind = EventKind::LoadShift;
            // Mostly single-server shifts; 1-in-8 moves every server
            // (the diurnal swing), exercising the full-refresh rung.
            e.subject = rng.bernoulli(0.125)
                            ? -1
                            : rng.uniformInt(0, config.servers - 1);
            e.value = rng.uniform(0.1, 0.95);
            events.push_back(e);
            t += nextGap(rng, config.loadShiftRate);
        }
    }

    if (config.beChurnRate > 0.0) {
        Rng rng = stream(EventKind::BeArrive);
        SimTime t = nextGap(rng, config.beChurnRate);
        while (t < config.horizon) {
            ControlEvent e;
            e.tick = t;
            // Alternate-ish churn: arrivals twice as likely as
            // departures keeps the cluster busy.
            e.kind = rng.bernoulli(2.0 / 3.0) ? EventKind::BeArrive
                                              : EventKind::BeDepart;
            e.subject = e.kind == EventKind::BeDepart
                            ? rng.uniformInt(0, config.bePool - 1)
                            : -1;
            events.push_back(e);
            t += nextGap(rng, config.beChurnRate);
        }
    }

    if (config.crashRate > 0.0) {
        Rng rng = stream(EventKind::ServerCrash);
        SimTime t = nextGap(rng, config.crashRate);
        while (t < config.horizon) {
            const int server =
                rng.uniformInt(0, config.servers - 1);
            ControlEvent crash;
            crash.tick = t;
            crash.kind = EventKind::ServerCrash;
            crash.subject = server;
            events.push_back(crash);

            const double mean =
                static_cast<double>(config.meanOutage);
            const double u = rng.uniform();
            const SimTime outage = std::max<SimTime>(
                1,
                static_cast<SimTime>(-std::log(1.0 - u) * mean));
            const SimTime back = t + outage;
            if (back < config.horizon) {
                ControlEvent recover;
                recover.tick = back;
                recover.kind = EventKind::ServerRecover;
                recover.subject = server;
                events.push_back(recover);
            }
            t += nextGap(rng, config.crashRate);
        }
    }

    if (config.budgetChangeRate > 0.0) {
        Rng rng = stream(EventKind::BudgetChange);
        SimTime t = nextGap(rng, config.budgetChangeRate);
        while (t < config.horizon) {
            ControlEvent e;
            e.tick = t;
            e.kind = EventKind::BudgetChange;
            e.value = rng.uniform(0.6, 1.2);
            events.push_back(e);
            t += nextGap(rng, config.budgetChangeRate);
        }
    }

    return fromEvents(std::move(events));
}

SimTime
EventLog::horizon() const
{
    return events_.empty() ? 0 : events_.back().tick;
}

EventLog
EventLog::suffixFrom(std::size_t lsn) const
{
    POCO_REQUIRE(lsn <= events_.size(),
                 "replay LSN past the end of the log");
    EventLog tail;
    // The suffix of a sorted log is sorted; copy it verbatim rather
    // than re-sorting through fromEvents (which could reorder
    // same-tick events relative to the prefix the caller applied).
    tail.events_.assign(events_.begin() +
                            static_cast<std::ptrdiff_t>(lsn),
                        events_.end());
    return tail;
}

std::uint64_t
EventLog::fingerprint() const
{
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t word) {
        for (int byte = 0; byte < 8; ++byte) {
            h ^= word & 0xffu;
            h *= 1099511628211ull;
            word >>= 8;
        }
    };
    for (const ControlEvent& e : events_) {
        mix(static_cast<std::uint64_t>(e.tick));
        mix(static_cast<std::uint64_t>(e.kind));
        mix(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(e.subject)));
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(e.value));
        std::memcpy(&bits, &e.value, sizeof(bits));
        mix(bits);
    }
    return h;
}

namespace
{

/** Volley spacing for an EventBurst window (magnitude events/s). */
SimTime
burstGap(const fault::FaultWindow& w)
{
    const double rate = w.magnitude > 0.0 ? w.magnitude : 50.0;
    return std::max<SimTime>(
        1, static_cast<SimTime>(static_cast<double>(kSecond) / rate));
}

} // namespace

EventLog
eventsFromFaultPlan(const fault::FaultPlan& plan, int servers)
{
    POCO_REQUIRE(servers >= 1, "need at least one server");
    std::vector<ControlEvent> events;
    // Exact capacity: crash windows lower to one pair per target,
    // burst windows to duration / gap volley events.
    std::size_t count = 0;
    for (const fault::FaultWindow& w : plan.windows()) {
        if (w.kind == fault::FaultKind::ServerCrash)
            count += 2 * static_cast<std::size_t>(
                             w.server < 0 ? servers : 1);
        else if (w.kind == fault::FaultKind::EventBurst)
            count += static_cast<std::size_t>(
                         (w.duration() - 1) / burstGap(w)) +
                     1;
    }
    events.reserve(count);

    for (const fault::FaultWindow& w : plan.windows()) {
        if (w.kind == fault::FaultKind::ServerCrash) {
            const int first = w.server < 0 ? 0 : w.server;
            const int last = w.server < 0 ? servers - 1 : w.server;
            for (int s = first; s <= last; ++s) {
                ControlEvent crash;
                crash.tick = w.start;
                crash.kind = EventKind::ServerCrash;
                crash.subject = s;
                events.push_back(crash);
                ControlEvent recover;
                recover.tick = w.end;
                recover.kind = EventKind::ServerRecover;
                recover.subject = s;
                events.push_back(recover);
            }
        } else if (w.kind == fault::FaultKind::EventBurst) {
            // A storm of single-server LoadShifts. Loads come from a
            // stream keyed by the window's own coordinates, so a
            // burst's volley is independent of every other window
            // and of the plan it rides in.
            const SimTime gap = burstGap(w);
            Rng rng(static_cast<std::uint64_t>(w.start) *
                        0x9e3779b97f4a7c15ULL ^
                    static_cast<std::uint64_t>(
                        static_cast<std::int64_t>(w.server) + 257));
            int next_target = w.server < 0 ? 0 : w.server;
            for (SimTime t = w.start; t < w.end; t += gap) {
                ControlEvent shift;
                shift.tick = t;
                shift.kind = EventKind::LoadShift;
                shift.subject = next_target % servers;
                shift.value = rng.uniform(0.1, 0.95);
                events.push_back(shift);
                if (w.server < 0)
                    ++next_target; // broadcast: round-robin targets
            }
        }
        // MasterKill / MasterPause stay with the MasterGroup; the
        // remaining kinds are server-level injector business.
    }
    return EventLog::fromEvents(std::move(events));
}

} // namespace poco::ctrl
