/**
 * @file
 * The control plane's input: a totally-ordered log of cluster events.
 *
 * The streaming master (control_plane.hpp) does not observe wall
 * clock. Everything that happens to a cluster — load moving, BE jobs
 * arriving and leaving, servers crashing and coming back, the power
 * budget being re-negotiated — is a ControlEvent with a *logical*
 * timestamp, and an EventLog is the sorted, immutable sequence of
 * them. Replaying the same log therefore reproduces the same run
 * bit-for-bit: seeded generation (Rng::split per event kind, the
 * FaultPlan pattern) stands in for live arrivals, and tests diff
 * rollup fingerprints across replays and thread counts.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "util/units.hpp"

namespace poco::fault
{
class FaultPlan;
}

namespace poco::ctrl
{

/** What happened (the control plane's whole input vocabulary). */
enum class EventKind
{
    LoadShift,     ///< server `subject` now serves LC load `value`
                   ///< (subject -1: every server shifts together)
    BeArrive,      ///< next pooled BE candidate joins the cluster
    BeDepart,      ///< active BE `subject` leaves the cluster
    ServerCrash,   ///< server `subject` stops heartbeating
    ServerRecover, ///< server `subject` resumes heartbeating
    BudgetChange,  ///< fleet budget rescaled by factor `value`
};

const char* eventKindName(EventKind kind);

/** One event at one logical tick. */
struct ControlEvent
{
    SimTime tick = 0;
    EventKind kind = EventKind::LoadShift;
    /** Server index (crash/recover/load) or BE index (depart). */
    int subject = -1;
    /** Load fraction or budget scale, kind-dependent. */
    double value = 0.0;
};

/** Seeded arrival rates for EventLog::generate. */
struct EventLogConfig
{
    /** Log length in logical ticks; no event lands at or past it. */
    SimTime horizon = 60 * kSecond;
    /** Servers events may target. */
    int servers = 1;
    /** BE candidates the arrive/depart churn draws from. */
    int bePool = 1;

    /** Expected events per simulated second, per kind. */
    double loadShiftRate = 0.5;
    double beChurnRate = 0.05;  ///< arrivals (departs match ~half)
    double crashRate = 0.02;    ///< crashes (each gets a recover)
    double budgetChangeRate = 0.01;

    /** Mean crash outage length (recover follows the crash). */
    SimTime meanOutage = 5 * kSecond;

    /** Root seed; every stream is split from it per kind. */
    std::uint64_t seed = 0;
};

/**
 * Immutable, totally-ordered event sequence. Ordering is
 * (tick, kind, subject, value) so two logs built from the same
 * events compare equal element-wise regardless of insertion order.
 */
class EventLog
{
  public:
    EventLog() = default;

    /** Wrap explicit events (tests, hand-crafted scenarios). */
    static EventLog fromEvents(std::vector<ControlEvent> events);

    /**
     * Deterministically expand @p config into a log. Per-kind streams
     * come from Rng::split keyed by the kind, so adding one kind's
     * traffic never perturbs another's arrival ticks.
     */
    static EventLog generate(const EventLogConfig& config);

    /**
     * The union of two logs, re-sorted into total order. Because
     * ordering is (tick, kind, subject, value), merging is
     * commutative: merged(a, b) == merged(b, a) element-wise. This
     * is how scenario generators compose independently generated
     * streams (BE arrival queues, load-shift markers) into the one
     * log a control plane replays.
     */
    static EventLog merged(const EventLog& a, const EventLog& b);

    bool empty() const { return events_.empty(); }
    std::size_t size() const { return events_.size(); }
    const std::vector<ControlEvent>& events() const { return events_; }

    /** Last event's tick (0 for an empty log). */
    SimTime horizon() const;

    /**
     * The log's tail starting at position @p lsn — the replay-from-
     * LSN seam for checkpoint recovery: a master that checkpointed
     * after applying events [0, lsn) catches up by replaying exactly
     * suffixFrom(lsn). LSNs are positions, not ticks, so a
     * checkpoint taken between two same-tick events splits the
     * burst exactly where the primary stopped. lsn == size() yields
     * an empty log; lsn > size() is a caller error (throws).
     */
    EventLog suffixFrom(std::size_t lsn) const;

    /** FNV-1a over every event's fields (replay identity checks). */
    [[nodiscard]] std::uint64_t fingerprint() const;

  private:
    std::vector<ControlEvent> events_;
};

/**
 * The fault-injection seam: lower a FaultPlan's ServerCrash windows
 * into ServerCrash / ServerRecover event pairs, and its EventBurst
 * windows into dense LoadShift volleys (`magnitude` events/second,
 * loads drawn from a split stream keyed by the window, broadcast
 * windows round-robining the servers), so a schedule written for
 * the batch evaluators drives the streaming master unchanged.
 * Broadcast crash windows (server == -1) expand to one pair per
 * server. MasterKill / MasterPause windows are NOT lowered — they
 * target the control plane itself and are consumed by MasterGroup.
 */
EventLog eventsFromFaultPlan(const fault::FaultPlan& plan,
                             int servers);

} // namespace poco::ctrl
