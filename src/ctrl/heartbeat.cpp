#include "ctrl/heartbeat.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/milliwatts.hpp"

namespace poco::ctrl
{

const char*
serverHealthName(ServerHealth health)
{
    switch (health) {
      case ServerHealth::Alive:   return "alive";
      case ServerHealth::Suspect: return "suspect";
      case ServerHealth::Dead:    return "dead";
    }
    return "?";
}

HeartbeatTracker::HeartbeatTracker(std::size_t servers,
                                   const HeartbeatConfig& config,
                                   Watts perServerGrant)
    : config_(config)
{
    POCO_REQUIRE(servers > 0, "tracker needs at least one server");
    POCO_REQUIRE(config.periodTicks > 0,
                 "heartbeat period must be positive");
    POCO_REQUIRE(config.jitterTicks >= 0,
                 "heartbeat jitter must be non-negative");
    POCO_REQUIRE(config.suspectMisses >= 1,
                 "suspectMisses must be at least 1");
    POCO_REQUIRE(config.deadMisses >= config.suspectMisses,
                 "deadMisses must be >= suspectMisses");
    POCO_REQUIRE(perServerGrant >= Watts{},
                 "grants must be non-negative");

    grant_mw_ = toMilliwatts(perServerGrant);
    total_mw_ =
        grant_mw_ * static_cast<std::int64_t>(servers);
    pool_mw_ = 0;

    const Rng root(config.seed);
    servers_.resize(servers);
    for (std::size_t s = 0; s < servers; ++s) {
        ServerState& state = servers_[s];
        // Per-server stream keyed by the index: a server's cadence
        // is independent of how many servers the tracker covers.
        state.jitter = root.split(s);
        state.granted = true;
        ++stats_.registrations;
        state.next_beat = config_.periodTicks + jitter(state);
    }
}

SimTime
HeartbeatTracker::jitter(ServerState& s)
{
    if (config_.jitterTicks == 0)
        return 0;
    return static_cast<SimTime>(
        s.jitter.nextU64() %
        static_cast<std::uint64_t>(config_.jitterTicks + 1));
}

void
HeartbeatTracker::advanceTo(SimTime now)
{
    POCO_REQUIRE(now >= now_, "logical time must not go backwards");
    for (ServerState& s : servers_) {
        while (s.next_beat <= now) {
            if (!s.crashed) {
                ++stats_.beats;
                s.misses = 0;
                if (s.health == ServerHealth::Dead) {
                    // Re-registration: back on the ladder and back
                    // on the budget ledger, exactly once.
                    ++stats_.registrations;
                    if (!s.granted) {
                        s.granted = true;
                        pool_mw_ -= grant_mw_;
                    }
                }
                s.health = ServerHealth::Alive;
            } else {
                ++stats_.misses;
                ++s.misses;
                if (s.health == ServerHealth::Alive &&
                    s.misses >= config_.suspectMisses) {
                    s.health = ServerHealth::Suspect;
                    ++stats_.suspected;
                }
                if (s.health == ServerHealth::Suspect &&
                    s.misses >= config_.deadMisses) {
                    s.health = ServerHealth::Dead;
                    ++stats_.deaths;
                    // The one place a grant is freed; the flag makes
                    // a re-walk of the ladder free it at most once.
                    if (s.granted) {
                        s.granted = false;
                        pool_mw_ += grant_mw_;
                    }
                }
            }
            // The schedule ticks on whether or not the beat landed,
            // so jitter consumption is a pure function of time.
            s.next_beat += config_.periodTicks + jitter(s);
        }
    }
    now_ = now;
}

void
HeartbeatTracker::crash(std::size_t server)
{
    POCO_REQUIRE(server < servers_.size(), "server out of range");
    servers_[server].crashed = true;
}

void
HeartbeatTracker::recover(std::size_t server)
{
    POCO_REQUIRE(server < servers_.size(), "server out of range");
    servers_[server].crashed = false;
}

ServerHealth
HeartbeatTracker::health(std::size_t server) const
{
    POCO_REQUIRE(server < servers_.size(), "server out of range");
    return servers_[server].health;
}

std::vector<std::size_t>
HeartbeatTracker::placeableServers() const
{
    std::vector<std::size_t> alive;
    alive.reserve(servers_.size());
    for (std::size_t s = 0; s < servers_.size(); ++s)
        if (servers_[s].health != ServerHealth::Dead)
            alive.push_back(s);
    return alive;
}

Watts
HeartbeatTracker::pool() const
{
    return fromMilliwatts(pool_mw_);
}

Watts
HeartbeatTracker::granted(std::size_t server) const
{
    POCO_REQUIRE(server < servers_.size(), "server out of range");
    return servers_[server].granted ? fromMilliwatts(grant_mw_)
                                    : Watts{};
}

Watts
HeartbeatTracker::grantedTotal() const
{
    std::int64_t granted_mw = 0;
    for (const ServerState& s : servers_)
        if (s.granted)
            granted_mw += grant_mw_;
    return fromMilliwatts(granted_mw);
}

Watts
HeartbeatTracker::totalIssued() const
{
    return fromMilliwatts(total_mw_);
}

bool
HeartbeatTracker::conservesBudget() const
{
    std::int64_t granted_mw = 0;
    for (const ServerState& s : servers_)
        if (s.granted)
            granted_mw += grant_mw_;
    return pool_mw_ + granted_mw == total_mw_;
}

std::uint64_t
HeartbeatTracker::fingerprint() const
{
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t word) {
        for (int byte = 0; byte < 8; ++byte) {
            h ^= word & 0xffu;
            h *= 1099511628211ull;
            word >>= 8;
        }
    };
    for (const ServerState& s : servers_) {
        mix(static_cast<std::uint64_t>(s.next_beat));
        mix(static_cast<std::uint64_t>(s.misses));
        mix(static_cast<std::uint64_t>(s.crashed ? 1 : 0));
        mix(static_cast<std::uint64_t>(s.granted ? 1 : 0));
        mix(static_cast<std::uint64_t>(s.health));
    }
    mix(static_cast<std::uint64_t>(pool_mw_));
    mix(stats_.beats);
    mix(stats_.misses);
    mix(stats_.suspected);
    mix(stats_.deaths);
    mix(stats_.registrations);
    return h;
}

} // namespace poco::ctrl
