#include "ctrl/control_plane.hpp"

#include <algorithm>
#include <cstring>

#include "math/solver_cache.hpp"
#include "runtime/parallel.hpp"
#include "sim/telemetry_rollup.hpp"
#include "util/check.hpp"

namespace poco::ctrl
{

namespace
{

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void
mixWord(std::uint64_t& h, std::uint64_t word)
{
    for (int byte = 0; byte < 8; ++byte) {
        h ^= word & 0xffu;
        h *= kFnvPrime;
        word >>= 8;
    }
}

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

std::uint64_t
hashAssignment(const std::vector<int>& assignment)
{
    std::uint64_t h = kFnvOffset;
    for (const int j : assignment)
        mixWord(h, static_cast<std::uint64_t>(
                       static_cast<std::int64_t>(j)));
    return h;
}

std::uint64_t
rollupFingerprint(const CtrlRollup& roll)
{
    std::uint64_t h = kFnvOffset;
    for (const EventRecord& r : roll.records) {
        mixWord(h, static_cast<std::uint64_t>(r.tick));
        mixWord(h, static_cast<std::uint64_t>(r.kind));
        mixWord(h, static_cast<std::uint64_t>(
                       static_cast<std::int64_t>(r.subject)));
        mixWord(h, static_cast<std::uint64_t>(r.tier));
        mixWord(h, static_cast<std::uint64_t>(r.attempts));
        mixWord(h, doubleBits(r.objective));
        mixWord(h, r.assignmentFingerprint);
        mixWord(h, r.activeBe);
        mixWord(h, r.placeableServers);
    }
    mixWord(h, roll.livenessFingerprint);
    mixWord(h, doubleBits(roll.budgetPool.value()));
    return h;
}

} // namespace

ControlPlane::ControlPlane(CellModel cells,
                           ControlPlaneConfig config,
                           cluster::SolverContext context)
    : cells_(std::move(cells)), config_(config), context_(context)
{
    POCO_REQUIRE(static_cast<bool>(cells_),
                 "control plane needs a cell model");
    POCO_REQUIRE(config_.servers > 0,
                 "control plane needs at least one server");
    POCO_REQUIRE(config_.bePool > 0,
                 "control plane needs a BE candidate pool");
    POCO_REQUIRE(config_.initialLoad > 0.0 &&
                     config_.initialLoad <= 1.0,
                 "initialLoad must be in (0, 1]");
    config_.initialBe = std::min(config_.initialBe, config_.bePool);
}

Outcome<CtrlRollup>
ControlPlane::replay(const EventLog& log)
{
    // Fresh state every replay: the identity contract is that two
    // replays of one log agree bit-for-bit, tier counters included.
    HeartbeatTracker tracker(config_.servers, config_.heartbeat,
                             config_.perServerBudget);
    math::AssignmentCache memo;
    cluster::SolverContext ctx = context_;
    ctx.cache = config_.forceCold ? nullptr : &memo;
    cluster::IncrementalPlacer placer(ctx);

    if (telemetry_ != nullptr)
        POCO_REQUIRE(telemetry_->servers() == config_.servers,
                     "telemetry sink must cover every server");

    std::vector<char> active(config_.bePool, 0);
    std::vector<std::size_t> active_list;
    for (std::size_t i = 0; i < config_.initialBe; ++i) {
        active[i] = 1;
        active_list.push_back(i);
    }
    std::vector<double> load(config_.servers, config_.initialLoad);
    double budget_scale = 1.0;
    std::vector<std::size_t> prev_alive =
        tracker.placeableServers();

    CtrlRollup roll;
    roll.records.reserve(log.size());
    SolverTier worst = SolverTier::None;
    int total_attempts = 0;
    Degradation degradation;

    for (const ControlEvent& e : log.events()) {
        tracker.advanceTo(e.tick);
        std::vector<std::size_t> alive =
            tracker.placeableServers();
        // Liveness transitions (dead servers leaving the matrix,
        // recovered ones re-registering) change the topology even
        // when the event itself would not.
        const bool topo_changed = alive != prev_alive;
        bool matrix_changed = topo_changed;
        cluster::PlacementDelta delta =
            topo_changed ? cluster::PlacementDelta::shape()
                         : cluster::PlacementDelta::fullRefresh();

        switch (e.kind) {
          case EventKind::LoadShift: {
            const double level =
                std::clamp(e.value, 0.01, 1.0);
            if (e.subject < 0) {
                std::fill(load.begin(), load.end(), level);
                matrix_changed = true;
            } else if (static_cast<std::size_t>(e.subject) <
                       config_.servers) {
                const auto srv =
                    static_cast<std::size_t>(e.subject);
                load[srv] = level;
                const auto col = std::find(alive.begin(),
                                           alive.end(), srv);
                if (col != alive.end()) {
                    matrix_changed = true;
                    if (!topo_changed)
                        delta = cluster::PlacementDelta::column(
                            static_cast<std::size_t>(
                                col - alive.begin()));
                }
                // A dead server's load moves no matrix cell; the
                // new level applies when it re-registers (a shape
                // change at that tick).
            }
            break;
          }
          case EventKind::BeArrive: {
            for (std::size_t i = 0; i < config_.bePool; ++i) {
                if (!active[i]) {
                    active[i] = 1;
                    active_list.push_back(i);
                    matrix_changed = true;
                    delta = cluster::PlacementDelta::shape();
                    break;
                }
            }
            break; // pool exhausted: no-op event
          }
          case EventKind::BeDepart: {
            const auto be = static_cast<std::size_t>(
                e.subject < 0 ? 0 : e.subject);
            if (be < config_.bePool && active[be]) {
                active[be] = 0;
                active_list.erase(std::find(active_list.begin(),
                                            active_list.end(),
                                            be));
                matrix_changed = true;
                delta = cluster::PlacementDelta::shape();
            }
            break;
          }
          case EventKind::ServerCrash: {
            if (e.subject >= 0 &&
                static_cast<std::size_t>(e.subject) <
                    config_.servers)
                tracker.crash(
                    static_cast<std::size_t>(e.subject));
            // The matrix only changes when the liveness ladder
            // later declares the server dead.
            break;
          }
          case EventKind::ServerRecover: {
            if (e.subject >= 0 &&
                static_cast<std::size_t>(e.subject) <
                    config_.servers)
                tracker.recover(
                    static_cast<std::size_t>(e.subject));
            break;
          }
          case EventKind::BudgetChange: {
            budget_scale = std::max(0.05, e.value);
            matrix_changed = true;
            if (!topo_changed)
                delta = cluster::PlacementDelta::fullRefresh();
            break;
          }
        }

        EventRecord rec;
        rec.tick = e.tick;
        rec.kind = e.kind;
        rec.subject = e.subject;
        rec.activeBe =
            static_cast<std::uint32_t>(active_list.size());
        rec.placeableServers =
            static_cast<std::uint32_t>(alive.size());

        if (matrix_changed && !alive.empty() &&
            !active_list.empty()) {
            // Rows: active BEs in arrival order, shed past the live
            // server count (rows <= cols is a hard solver precond).
            std::vector<std::size_t> rows = active_list;
            if (rows.size() > alive.size()) {
                rows.resize(alive.size());
                degradation.workShed = true;
            }

            // Each cell is an independent pure call; fan the rows
            // out over the pool, each writing its own slice of the
            // flat buffer. Slot-addressed writes keep the matrix
            // bit-identical for any worker count.
            cluster::PerformanceMatrix matrix;
            matrix.resize(rows.size(), alive.size());
            runtime::parallelFor(
                ctx.pool, rows.size(), [&](std::size_t i) {
                    double* row = matrix.row(i);
                    for (std::size_t c = 0; c < alive.size(); ++c)
                        row[c] = cells_(rows[i], alive[c],
                                        load[alive[c]]) *
                                 budget_scale;
                });

            Outcome<std::vector<int>> placed =
                config_.forceCold
                    ? cluster::placeWithFallback(matrix, ctx)
                    : placer.resolve(matrix, delta);

            rec.tier = placed.tier;
            rec.attempts = placed.attempts;
            rec.objective =
                cluster::placementValue(matrix, placed.value);
            rec.assignmentFingerprint =
                hashAssignment(placed.value);
            worst = worseTier(worst, placed.tier);
            total_attempts += placed.attempts;
            degradation |= placed.degradation;
            ++roll.resolves;

            if (telemetry_ != nullptr) {
                for (std::size_t i = 0; i < rows.size(); ++i) {
                    if (placed.value[i] < 0)
                        continue; // degraded tiers may shed rows
                    const auto c = static_cast<std::size_t>(
                        placed.value[i]);
                    const std::size_t srv = alive[c];
                    sim::TelemetrySample sample;
                    sample.when = e.tick;
                    sample.lcLoad = Rps(load[srv]);
                    sample.beThroughput = Rps(matrix(i, c));
                    sample.power = Watts(
                        tracker.granted(srv).value() *
                        load[srv]);
                    telemetry_->appendDelta(
                        srv, {sample}, tracker.granted(srv));
                }
            }
        }

        roll.records.push_back(rec);
        prev_alive = std::move(alive);
    }

    if (telemetry_ != nullptr)
        telemetry_->sealEpoch(0, log.horizon() + 1);

    POCO_ASSERT(tracker.conservesBudget(),
                "heartbeat tracker leaked budget");

    roll.solver = placer.stats();
    roll.heartbeat = tracker.stats();
    roll.budgetPool = tracker.pool();
    roll.livenessFingerprint = tracker.fingerprint();
    roll.fingerprint = rollupFingerprint(roll);
    return {std::move(roll), worst, total_attempts, degradation};
}

} // namespace poco::ctrl
