#include "ctrl/control_plane.hpp"

#include <algorithm>
#include <cstring>

#include "math/solver_cache.hpp"
#include "runtime/parallel.hpp"
#include "sim/telemetry_rollup.hpp"
#include "util/check.hpp"

namespace poco::ctrl
{

namespace
{

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void
mixWord(std::uint64_t& h, std::uint64_t word)
{
    for (int byte = 0; byte < 8; ++byte) {
        h ^= word & 0xffu;
        h *= kFnvPrime;
        word >>= 8;
    }
}

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

std::uint64_t
hashAssignment(const std::vector<int>& assignment)
{
    std::uint64_t h = kFnvOffset;
    for (const int j : assignment)
        mixWord(h, static_cast<std::uint64_t>(
                       static_cast<std::int64_t>(j)));
    return h;
}

std::uint64_t
degradationBits(const Degradation& d)
{
    return (d.conservative ? 1u : 0u) |
           (d.modelsUntrusted ? 2u : 0u) | (d.workShed ? 4u : 0u) |
           (d.budgetClamped ? 8u : 0u);
}

/**
 * One record's contribution. The semantic view drops tier/attempts:
 * a failover catch-up legitimately re-solves cold where the oracle
 * ran warm, but every rung is exact, so the *answers* must agree.
 */
void
mixRecord(std::uint64_t& h, const EventRecord& r, bool semantic)
{
    mixWord(h, static_cast<std::uint64_t>(r.tick));
    mixWord(h, static_cast<std::uint64_t>(r.kind));
    mixWord(h, static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(r.subject)));
    if (!semantic) {
        mixWord(h, static_cast<std::uint64_t>(r.tier));
        mixWord(h, static_cast<std::uint64_t>(r.attempts));
    }
    mixWord(h, static_cast<std::uint64_t>(r.shed ? 1 : 0));
    mixWord(h, doubleBits(r.objective));
    mixWord(h, r.assignmentFingerprint);
    mixWord(h, r.activeBe);
    mixWord(h, r.placeableServers);
}

std::uint64_t
rollupFingerprint(const CtrlRollup& roll, bool semantic)
{
    std::uint64_t h = kFnvOffset;
    for (const EventRecord& r : roll.records)
        mixRecord(h, r, semantic);
    mixWord(h, roll.livenessFingerprint);
    mixWord(h, doubleBits(roll.budgetPool.value()));
    return h;
}

/** Patch the placer's context: memo per engine (replay identity),
 *  none at all when the bench wants every solve cold. */
cluster::SolverContext
placerContext(cluster::SolverContext ctx,
              const ControlPlaneConfig& config,
              math::AssignmentCache& memo)
{
    ctx.cache = config.forceCold ? nullptr : &memo;
    return ctx;
}

} // namespace

std::uint64_t
CtrlCheckpoint::fingerprint() const
{
    std::uint64_t h = kFnvOffset;
    mixWord(h, lsn);
    mixWord(h, static_cast<std::uint64_t>(tick));
    mixWord(h, tracker.fingerprint());
    for (const char a : active)
        mixWord(h, static_cast<std::uint64_t>(a));
    for (const std::size_t be : activeList)
        mixWord(h, be);
    for (const double l : load)
        mixWord(h, doubleBits(l));
    mixWord(h, doubleBits(budgetScale));
    for (const std::size_t s : prevAlive)
        mixWord(h, s);
    for (const EventRecord& r : records)
        mixRecord(h, r, /*semantic=*/false);
    mixWord(h, resolves);
    mixWord(h, sheds);
    mixWord(h, coalesced);
    mixWord(h, maxQueueDepth);
    mixWord(h, static_cast<std::uint64_t>(worst));
    mixWord(h, static_cast<std::uint64_t>(attempts));
    mixWord(h, degradationBits(degradation));
    for (const SimTime t : pending)
        mixWord(h, static_cast<std::uint64_t>(t));
    mixWord(h, dirtySheds);
    return h;
}

ReplayEngine::ReplayEngine(const CellModel& cells,
                           const ControlPlaneConfig& config,
                           cluster::SolverContext context,
                           sim::TelemetryAggregator* telemetry)
    : cells_(cells), config_(config),
      context_(placerContext(context, config_, memo_)),
      telemetry_(telemetry),
      placer_(context_),
      tracker_(config.servers, config.heartbeat,
               config.perServerBudget)
{
    POCO_REQUIRE(static_cast<bool>(cells),
                 "replay engine needs a cell model");
    POCO_REQUIRE(config.bePool > 0,
                 "replay engine needs a BE candidate pool");
    POCO_REQUIRE(config.initialLoad > 0.0 &&
                     config.initialLoad <= 1.0,
                 "initialLoad must be in (0, 1]");
    POCO_REQUIRE(!config.backpressure.enabled ||
                     (config.backpressure.window >= 1 &&
                      config.backpressure.resolveCost > 0),
                 "backpressure needs window >= 1 and a positive "
                 "resolve cost");
    if (telemetry_ != nullptr)
        POCO_REQUIRE(telemetry_->servers() == config.servers,
                     "telemetry sink must cover every server");

    const std::size_t initial_be =
        std::min(config.initialBe, config.bePool);
    active_.assign(config.bePool, 0);
    active_list_.reserve(config.bePool);
    for (std::size_t i = 0; i < initial_be; ++i) {
        active_[i] = 1;
        active_list_.push_back(i);
    }
    load_.assign(config.servers, config.initialLoad);
    prev_alive_ = tracker_.placeableServers();
    pending_.reserve(config.backpressure.window + 1);
}

ReplayEngine::ReplayEngine(const CellModel& cells,
                           const ControlPlaneConfig& config,
                           cluster::SolverContext context,
                           const CtrlCheckpoint& checkpoint,
                           sim::TelemetryAggregator* telemetry)
    : cells_(cells), config_(config),
      context_(placerContext(context, config_, memo_)),
      telemetry_(telemetry),
      placer_(context_),
      tracker_(checkpoint.tracker)
{
    POCO_REQUIRE(static_cast<bool>(cells),
                 "replay engine needs a cell model");
    POCO_REQUIRE(checkpoint.active.size() == config.bePool &&
                     checkpoint.load.size() == config.servers,
                 "checkpoint shape does not match the config");
    if (telemetry_ != nullptr)
        POCO_REQUIRE(telemetry_->servers() == config.servers,
                     "telemetry sink must cover every server");

    applied_ = checkpoint.lsn;
    last_tick_ = checkpoint.tick;
    active_ = checkpoint.active;
    active_list_ = checkpoint.activeList;
    active_list_.reserve(config.bePool);
    load_ = checkpoint.load;
    budget_scale_ = checkpoint.budgetScale;
    prev_alive_ = checkpoint.prevAlive;
    records_ = checkpoint.records;
    resolves_ = checkpoint.resolves;
    sheds_ = checkpoint.sheds;
    coalesced_ = checkpoint.coalesced;
    max_queue_depth_ = checkpoint.maxQueueDepth;
    worst_ = checkpoint.worst;
    total_attempts_ = checkpoint.attempts;
    degradation_ = checkpoint.degradation;
    pending_ = checkpoint.pending;
    pending_.reserve(config.backpressure.window + 1);
    dirty_sheds_ = checkpoint.dirtySheds;
    // The placer and memo are deliberately cold here: the ladder's
    // rungs are all exact, so the restored master re-derives the
    // same assignments the checkpointed one would have — only tier
    // counters differ, which is why the oracle comparison uses the
    // semantic fingerprint.
}

void
ReplayEngine::reserveRecords(std::size_t events)
{
    records_.reserve(records_.size() + events);
}

void
ReplayEngine::apply(const ControlEvent& e)
{
    POCO_REQUIRE(!finished_, "replay engine already finished");
    const ControlPlaneConfig& cfg = config_;
    tracker_.advanceTo(e.tick);
    last_tick_ = e.tick;
    std::vector<std::size_t> alive = tracker_.placeableServers();
    // Liveness transitions (dead servers leaving the matrix,
    // recovered ones re-registering) change the topology even when
    // the event itself would not.
    const bool topo_changed = alive != prev_alive_;
    bool matrix_changed = topo_changed;
    cluster::PlacementDelta delta =
        topo_changed ? cluster::PlacementDelta::shape()
                     : cluster::PlacementDelta::fullRefresh();

    switch (e.kind) {
      case EventKind::LoadShift: {
        const double level = std::clamp(e.value, 0.01, 1.0);
        if (e.subject < 0) {
            std::fill(load_.begin(), load_.end(), level);
            matrix_changed = true;
        } else if (static_cast<std::size_t>(e.subject) <
                   cfg.servers) {
            const auto srv = static_cast<std::size_t>(e.subject);
            load_[srv] = level;
            const auto col =
                std::find(alive.begin(), alive.end(), srv);
            if (col != alive.end()) {
                matrix_changed = true;
                if (!topo_changed)
                    delta = cluster::PlacementDelta::column(
                        static_cast<std::size_t>(
                            col - alive.begin()));
            }
            // A dead server's load moves no matrix cell; the new
            // level applies when it re-registers (a shape change
            // at that tick).
        }
        break;
      }
      case EventKind::BeArrive: {
        for (std::size_t i = 0; i < cfg.bePool; ++i) {
            if (!active_[i]) {
                active_[i] = 1;
                active_list_.push_back(i);
                matrix_changed = true;
                delta = cluster::PlacementDelta::shape();
                break;
            }
        }
        break; // pool exhausted: no-op event
      }
      case EventKind::BeDepart: {
        const auto be =
            static_cast<std::size_t>(e.subject < 0 ? 0 : e.subject);
        if (be < cfg.bePool && active_[be]) {
            active_[be] = 0;
            active_list_.erase(std::find(active_list_.begin(),
                                         active_list_.end(), be));
            matrix_changed = true;
            delta = cluster::PlacementDelta::shape();
        }
        break;
      }
      case EventKind::ServerCrash: {
        if (e.subject >= 0 &&
            static_cast<std::size_t>(e.subject) < cfg.servers)
            tracker_.crash(static_cast<std::size_t>(e.subject));
        // The matrix only changes when the liveness ladder later
        // declares the server dead.
        break;
      }
      case EventKind::ServerRecover: {
        if (e.subject >= 0 &&
            static_cast<std::size_t>(e.subject) < cfg.servers)
            tracker_.recover(static_cast<std::size_t>(e.subject));
        break;
      }
      case EventKind::BudgetChange: {
        budget_scale_ = std::max(0.05, e.value);
        matrix_changed = true;
        if (!topo_changed)
            delta = cluster::PlacementDelta::fullRefresh();
        break;
      }
    }

    EventRecord rec;
    rec.tick = e.tick;
    rec.kind = e.kind;
    rec.subject = e.subject;
    rec.activeBe = static_cast<std::uint32_t>(active_list_.size());
    rec.placeableServers = static_cast<std::uint32_t>(alive.size());

    if (matrix_changed && !alive.empty() && !active_list_.empty()) {
        const BackpressureConfig& bp = cfg.backpressure;
        bool shed_now = false;
        if (bp.enabled) {
            // Re-solves finish in admission order, so the completed
            // prefix of the pending queue drains off the front.
            std::size_t done = 0;
            while (done < pending_.size() &&
                   pending_[done] <= e.tick)
                ++done;
            pending_.erase(pending_.begin(),
                           pending_.begin() +
                               static_cast<std::ptrdiff_t>(done));
            shed_now = pending_.size() >= bp.window;
        }

        // Rows: active BEs in arrival order, shed past the live
        // server count (rows <= cols is a hard solver precond).
        std::vector<std::size_t> rows = active_list_;
        if (rows.size() > alive.size()) {
            rows.resize(alive.size());
            degradation_.workShed = true;
        }

        // Each cell is an independent pure call; fan the rows out
        // over the pool, each writing its own slice of the flat
        // buffer. Slot-addressed writes keep the matrix
        // bit-identical for any worker count.
        cluster::PerformanceMatrix matrix;
        matrix.resize(rows.size(), alive.size());
        runtime::parallelFor(
            context_.pool, rows.size(), [&](std::size_t i) {
                double* row = matrix.row(i);
                for (std::size_t c = 0; c < alive.size(); ++c)
                    row[c] = cells_(rows[i], alive[c],
                                       load_[alive[c]]) *
                             budget_scale_;
            });

        const Outcome<std::vector<int>> placed =
            [&]() -> Outcome<std::vector<int>> {
            if (shed_now) {
                rec.shed = true;
                ++sheds_;
                ++dirty_sheds_;
                return placer_.shed(matrix);
            }
            if (bp.enabled && dirty_sheds_ > 0) {
                // The shed events mutated the modeled state without
                // a solve; this admitted re-solve coalesces all of
                // them (LoadShift-last-wins: the state holds only
                // the latest level) under one shape re-sync.
                delta = cluster::PlacementDelta::shape();
                coalesced_ += dirty_sheds_;
                dirty_sheds_ = 0;
            }
            Outcome<std::vector<int>> out =
                cfg.forceCold
                    ? cluster::placeWithFallback(matrix, context_)
                    : placer_.resolve(matrix, delta);
            if (bp.enabled) {
                // The master is busy until its queue drains; this
                // re-solve starts after the last admitted one.
                const SimTime busy_from =
                    pending_.empty()
                        ? e.tick
                        : std::max(e.tick, pending_.back());
                pending_.push_back(busy_from + bp.resolveCost);
            }
            return out;
        }();
        if (bp.enabled)
            max_queue_depth_ =
                std::max(max_queue_depth_, pending_.size());

        rec.tier = placed.tier;
        rec.attempts = placed.attempts;
        rec.objective = cluster::placementValue(matrix, placed.value);
        rec.assignmentFingerprint = hashAssignment(placed.value);
        worst_ = worseTier(worst_, placed.tier);
        total_attempts_ += placed.attempts;
        degradation_ |= placed.degradation;
        ++resolves_;

        if (telemetry_ != nullptr) {
            for (std::size_t i = 0; i < rows.size(); ++i) {
                if (placed.value[i] < 0)
                    continue; // degraded tiers may shed rows
                const auto c =
                    static_cast<std::size_t>(placed.value[i]);
                const std::size_t srv = alive[c];
                sim::TelemetrySample sample;
                sample.when = e.tick;
                sample.lcLoad = Rps(load_[srv]);
                sample.beThroughput = Rps(matrix(i, c));
                sample.power = Watts(tracker_.granted(srv).value() *
                                     load_[srv]);
                telemetry_->appendDelta(srv, {sample},
                                        tracker_.granted(srv));
            }
        }
    }

    records_.push_back(rec);
    prev_alive_ = std::move(alive);
    ++applied_;
}

CtrlCheckpoint
ReplayEngine::checkpoint() const
{
    POCO_REQUIRE(!finished_, "replay engine already finished");
    CtrlCheckpoint cp(tracker_);
    cp.lsn = applied_;
    cp.tick = last_tick_;
    cp.active = active_;
    cp.activeList = active_list_;
    cp.load = load_;
    cp.budgetScale = budget_scale_;
    cp.prevAlive = prev_alive_;
    cp.records = records_;
    cp.resolves = resolves_;
    cp.sheds = sheds_;
    cp.coalesced = coalesced_;
    cp.maxQueueDepth = max_queue_depth_;
    cp.worst = worst_;
    cp.attempts = total_attempts_;
    cp.degradation = degradation_;
    cp.pending = pending_;
    cp.dirtySheds = dirty_sheds_;
    return cp;
}

Outcome<CtrlRollup>
ReplayEngine::finish(SimTime horizon)
{
    POCO_REQUIRE(!finished_, "replay engine already finished");
    finished_ = true;

    if (telemetry_ != nullptr)
        telemetry_->sealEpoch(0, horizon + 1);

    POCO_ASSERT(tracker_.conservesBudget(),
                "heartbeat tracker leaked budget");

    CtrlRollup roll;
    roll.records = std::move(records_);
    roll.resolves = resolves_;
    roll.sheds = sheds_;
    roll.coalesced = coalesced_;
    roll.maxQueueDepth = max_queue_depth_;
    roll.solver = placer_.stats();
    roll.heartbeat = tracker_.stats();
    roll.budgetPool = tracker_.pool();
    roll.livenessFingerprint = tracker_.fingerprint();
    roll.fingerprint = rollupFingerprint(roll, /*semantic=*/false);
    roll.semanticFingerprint =
        rollupFingerprint(roll, /*semantic=*/true);
    return {std::move(roll), worst_, total_attempts_, degradation_};
}

ControlPlane::ControlPlane(CellModel cells,
                           ControlPlaneConfig config,
                           cluster::SolverContext context)
    : cells_(std::move(cells)), config_(config), context_(context)
{
    POCO_REQUIRE(static_cast<bool>(cells_),
                 "control plane needs a cell model");
    POCO_REQUIRE(config_.servers > 0,
                 "control plane needs at least one server");
    POCO_REQUIRE(config_.bePool > 0,
                 "control plane needs a BE candidate pool");
    POCO_REQUIRE(config_.initialLoad > 0.0 &&
                     config_.initialLoad <= 1.0,
                 "initialLoad must be in (0, 1]");
    config_.initialBe = std::min(config_.initialBe, config_.bePool);
}

Outcome<CtrlRollup>
ControlPlane::replay(const EventLog& log)
{
    // Fresh engine every replay: the identity contract is that two
    // replays of one log agree bit-for-bit, tier counters included.
    ReplayEngine engine(cells_, config_, context_, telemetry_);
    engine.reserveRecords(log.size());
    for (const ControlEvent& e : log.events())
        engine.apply(e);
    return engine.finish(log.horizon());
}

} // namespace poco::ctrl
