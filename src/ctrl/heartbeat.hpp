/**
 * @file
 * Server registration and heartbeat liveness tracking.
 *
 * Modeled on the tablet-server manager pattern from distributed
 * databases (YugabyteDB's heartbeater / ts_manager): every server
 * registers with the master and then reports on a jittered cadence;
 * the master never observes a crash directly, it only notices beats
 * going missing. Consecutive misses walk a server down the ladder
 *
 *     Alive --suspectMisses--> Suspect --deadMisses--> Dead
 *
 * and the first beat after an outage re-registers it in one step.
 * The tracker also owns the fleet's per-server power grants: a grant
 * is returned to the shared pool exactly once, on the Alive/Suspect
 * -> Dead transition, and re-issued exactly once, on re-registration
 * — a server flapping crash/recover below the dead threshold moves
 * no budget at all. Grants are integer milliwatts so conservation
 * (pool + sum(granted) == total) is exact, never a float epsilon.
 *
 * Determinism: beat schedules advance by period + jitter, with the
 * jitter drawn from a per-server Rng::split stream keyed by the
 * server index. The schedule keeps ticking while a server is crashed
 * (the beats are *missed*, not unscheduled), so the stream's
 * consumption count — and therefore every later jitter — depends
 * only on elapsed logical time, never on fault history.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace poco::ctrl
{

/** Cadence and ladder thresholds. */
struct HeartbeatConfig
{
    /** Nominal beat period in logical ticks. */
    SimTime periodTicks = kSecond;
    /** Uniform per-beat jitter in [0, jitterTicks]. */
    SimTime jitterTicks = kSecond / 10;
    /** Consecutive misses before Alive demotes to Suspect. */
    int suspectMisses = 2;
    /** Consecutive misses before Suspect demotes to Dead. */
    int deadMisses = 4;
    /** Seed for the per-server jitter streams. */
    std::uint64_t seed = 0;
};

/** The liveness ladder. */
enum class ServerHealth
{
    Alive,
    Suspect,
    Dead,
};

const char* serverHealthName(ServerHealth health);

/** Monotonic tracker counters. */
struct HeartbeatStats
{
    std::uint64_t beats = 0;       ///< delivered heartbeats
    std::uint64_t misses = 0;      ///< missed heartbeats
    std::uint64_t suspected = 0;   ///< Alive -> Suspect transitions
    std::uint64_t deaths = 0;      ///< -> Dead transitions
    std::uint64_t registrations = 0; ///< initial + re-registrations
};

/**
 * Liveness + budget ledger for one cluster's servers. Logical-time
 * only; drive it forward with advanceTo() before reading state.
 * Not thread-safe; the control plane owns one.
 *
 * Checkpoint contract: the tracker is a plain value type (the
 * per-server jitter Rngs are stored by value), so a copy IS a
 * checkpoint of the full ledger — schedules, miss counters, health,
 * the granted flags, and the milliwatt pool. Failover restores by
 * copying the checkpointed tracker back and replaying the event
 * suffix; because re-registration and reclaim are guarded by the
 * per-server granted flag (each moves budget exactly once), a
 * server that died and re-registered inside the checkpoint interval
 * cannot be double-granted by the replay — the restored flag
 * already records which side of the ledger its grant sits on.
 * Rebuilding a tracker from scratch instead of restoring the copy
 * would re-issue every initial grant and break conservation; the
 * chaos suite pins this down.
 */
class HeartbeatTracker
{
  public:
    /**
     * All servers start registered (Alive, granted) with their first
     * beat scheduled one jittered period in.
     * @param perServerGrant power grant issued to each live server.
     */
    HeartbeatTracker(std::size_t servers,
                     const HeartbeatConfig& config,
                     Watts perServerGrant);

    std::size_t servers() const { return servers_.size(); }

    /**
     * Deliver / miss every beat scheduled at ticks <= @p now.
     * Servers are independent (separate jitter streams, commutative
     * integer budget moves), so they are processed one at a time in
     * index order. Monotonic: @p now must not go backwards.
     */
    void advanceTo(SimTime now);

    /** Server stops beating (beats scheduled from now on are missed). */
    void crash(std::size_t server);

    /** Server resumes beating at its next scheduled beat. */
    void recover(std::size_t server);

    ServerHealth health(std::size_t server) const;

    /** Dead servers are out of the placement matrix; Suspect ones
     *  stay in (the ladder gives them deadMisses beats of grace). */
    bool placeable(std::size_t server) const
    {
        return health(server) != ServerHealth::Dead;
    }

    /** Indices with health != Dead, ascending. */
    std::vector<std::size_t> placeableServers() const;

    /** Undistributed budget (grants of dead servers). */
    Watts pool() const;

    /** Current grant of @p server (zero while dead). */
    Watts granted(std::size_t server) const;

    /** Sum of outstanding grants (exact integer milliwatts). */
    Watts grantedTotal() const;

    /** Total budget ever issued (pool + grants at all times). */
    Watts totalIssued() const;

    /** Exact ledger invariant: pool + sum(grants) == total issued. */
    [[nodiscard]] bool conservesBudget() const;

    const HeartbeatStats& stats() const { return stats_; }

    /** FNV-1a over health, grants, and counters (replay identity). */
    [[nodiscard]] std::uint64_t fingerprint() const;

  private:
    struct ServerState
    {
        SimTime next_beat = 0;
        int misses = 0;
        bool crashed = false;
        bool granted = false;
        ServerHealth health = ServerHealth::Alive;
        Rng jitter; // per-server split stream
    };

    SimTime jitter(ServerState& s);

    HeartbeatConfig config_;
    std::vector<ServerState> servers_;
    SimTime now_ = 0;
    std::int64_t grant_mw_ = 0; // per-server grant, milliwatts
    std::int64_t pool_mw_ = 0;
    std::int64_t total_mw_ = 0;
    HeartbeatStats stats_;
};

} // namespace poco::ctrl
