#include "ctrl/master_group.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/check.hpp"

namespace poco::ctrl
{

namespace
{

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void
mixWord(std::uint64_t& h, std::uint64_t word)
{
    for (int byte = 0; byte < 8; ++byte) {
        h ^= word & 0xffu;
        h *= kFnvPrime;
        word >>= 8;
    }
}

/** A fault window edge: a master going down or coming back. */
struct Boundary
{
    SimTime tick = 0;
    int master = 0;
    bool start = false; // false: window end (master returns)
    bool kill = false;  // MasterKill (vs MasterPause)
};

/** Ends before starts at a tick so back-to-back windows leave the
 *  master down for the union, deterministically. */
bool
boundaryLess(const Boundary& a, const Boundary& b)
{
    if (a.tick != b.tick)
        return a.tick < b.tick;
    if (a.start != b.start)
        return !a.start;
    if (a.master != b.master)
        return a.master < b.master;
    return a.kill < b.kill;
}

std::uint64_t
groupFingerprint(const MasterGroupRollup& roll)
{
    std::uint64_t h = kFnvOffset;
    mixWord(h, roll.rollup.fingerprint);
    for (const FailoverRecord& f : roll.failovers) {
        mixWord(h, static_cast<std::uint64_t>(f.tick));
        mixWord(h, static_cast<std::uint64_t>(
                       static_cast<std::int64_t>(f.fromMaster)));
        mixWord(h, static_cast<std::uint64_t>(
                       static_cast<std::int64_t>(f.toMaster)));
        mixWord(h, f.atLsn);
        mixWord(h, f.resumeLsn);
        mixWord(h, static_cast<std::uint64_t>(f.restored ? 1 : 0));
        mixWord(h, f.catchUpEvents);
    }
    mixWord(h, roll.checkpoints);
    mixWord(h, roll.maxStalenessEvents);
    mixWord(h, roll.masterLivenessFingerprint);
    return h;
}

} // namespace

MasterGroup::MasterGroup(CellModel cells, ControlPlaneConfig config,
                         MasterGroupConfig group,
                         cluster::SolverContext context)
    : cells_(std::move(cells)), config_(config), group_(group),
      context_(context)
{
    POCO_REQUIRE(static_cast<bool>(cells_),
                 "master group needs a cell model");
    POCO_REQUIRE(group_.masters >= 1,
                 "master group needs at least one master");
    POCO_REQUIRE(group_.checkpointEvery >= 1,
                 "checkpoint cadence must be at least 1 event");
    POCO_REQUIRE(config_.servers > 0 && config_.bePool > 0,
                 "master group needs servers and a BE pool");
    config_.initialBe = std::min(config_.initialBe, config_.bePool);
}

Outcome<MasterGroupRollup>
MasterGroup::run(const EventLog& log, const fault::FaultPlan& faults)
{
    const std::size_t masters = group_.masters;

    // Lower the master fault windows to sorted down/up edges. Other
    // kinds in the plan belong to other layers and are skipped.
    std::vector<Boundary> boundaries;
    boundaries.reserve(faults.windows().size() * 2);
    SimTime fault_horizon = 0;
    for (const fault::FaultWindow& w : faults.windows()) {
        if (w.kind != fault::FaultKind::MasterKill &&
            w.kind != fault::FaultKind::MasterPause)
            continue;
        POCO_REQUIRE(w.server >= 0 &&
                         static_cast<std::size_t>(w.server) <
                             masters,
                     "master fault window names a master outside "
                     "the group");
        const bool kill = w.kind == fault::FaultKind::MasterKill;
        boundaries.push_back({w.start, w.server, true, kill});
        boundaries.push_back({w.end, w.server, false, kill});
        fault_horizon = std::max(fault_horizon, w.end);
    }
    std::sort(boundaries.begin(), boundaries.end(), boundaryLess);

    // Zero-watt grants: the lease ladder reuses the heartbeat
    // tracker purely for seeded, jittered liveness.
    HeartbeatTracker lease(masters, group_.lease, Watts{});
    std::vector<std::unique_ptr<ReplayEngine>> engines(masters);
    std::vector<int> down(masters, 0); // nesting count of windows

    MasterGroupRollup roll;
    // At most one failover per fault window plus the shutdown
    // election — bounded, so the record list never reallocates.
    roll.failovers.reserve(faults.windows().size() + 1);
    std::size_t primary = 0;

    engines[primary] = std::make_unique<ReplayEngine>(
        cells_, config_, context_);
    engines[primary]->reserveRecords(log.size());
    // Durable floor: a group that loses every engine before the
    // first cadence checkpoint still has an LSN-0 state to restore.
    // Only the newest checkpoint is ever restored, so only it is
    // kept (real systems truncate the log the same way).
    CtrlCheckpoint latest = engines[primary]->checkpoint();
    ++roll.checkpoints;

    std::size_t next_boundary = 0;
    const auto processBoundariesThrough = [&](SimTime tick) {
        while (next_boundary < boundaries.size() &&
               boundaries[next_boundary].tick <= tick) {
            const Boundary& b = boundaries[next_boundary];
            lease.advanceTo(b.tick);
            const auto m = static_cast<std::size_t>(b.master);
            if (b.start) {
                if (down[m]++ == 0)
                    lease.crash(m);
                if (b.kill)
                    engines[m].reset(); // process state is gone
            } else {
                if (--down[m] == 0)
                    lease.recover(m);
            }
            ++next_boundary;
        }
    };

    // Elect a new primary: any up master, preferring the highest
    // resumable LSN (own engine or the latest checkpoint), ties to
    // the lowest index — fully deterministic.
    const auto electPrimary = [&](SimTime tick, std::size_t lsn) {
        const std::size_t checkpoint_lsn = latest.lsn;
        std::size_t best = masters;
        std::size_t best_lsn = 0;
        for (std::size_t m = 0; m < masters; ++m) {
            if (down[m] > 0)
                continue;
            const std::size_t resumable =
                engines[m] ? std::max(engines[m]->applied(),
                                      checkpoint_lsn)
                           : checkpoint_lsn;
            if (best == masters || resumable > best_lsn) {
                best = m;
                best_lsn = resumable;
            }
        }
        if (best == masters)
            return false; // total outage: stall until a recovery

        FailoverRecord rec;
        rec.tick = tick;
        rec.fromMaster = static_cast<int>(primary);
        rec.toMaster = static_cast<int>(best);
        rec.atLsn = lsn;
        if (!engines[best] ||
            engines[best]->applied() < checkpoint_lsn) {
            engines[best] = std::make_unique<ReplayEngine>(
                cells_, config_, context_, latest);
            rec.restored = true;
        }
        rec.resumeLsn = engines[best]->applied();
        rec.catchUpEvents = lsn + 1 - rec.resumeLsn;
        roll.failovers.push_back(rec);
        primary = best;
        engines[primary]->reserveRecords(log.size() -
                                         engines[primary]->applied());
        return true;
    };

    const auto drainTo = [&](std::size_t lsn) {
        ReplayEngine& eng = *engines[primary];
        if (eng.applied() <= lsn)
            roll.maxStalenessEvents =
                std::max(roll.maxStalenessEvents,
                         lsn - eng.applied());
        while (eng.applied() <= lsn) {
            eng.apply(log.events()[eng.applied()]);
            if (eng.applied() % group_.checkpointEvery == 0) {
                latest = eng.checkpoint();
                ++roll.checkpoints;
            }
        }
    };

    const std::vector<ControlEvent>& events = log.events();
    for (std::size_t lsn = 0; lsn < events.size(); ++lsn) {
        const SimTime tick = events[lsn].tick;
        processBoundariesThrough(tick);
        lease.advanceTo(tick);

        // Lease check: a dead primary (or one that came back from a
        // kill with no state) hands off before this event is applied.
        const bool primary_out =
            down[primary] > 0 &&
            lease.health(primary) == ServerHealth::Dead;
        const bool primary_stateless =
            down[primary] == 0 && !engines[primary];
        if (primary_out || primary_stateless) {
            if (!electPrimary(tick, lsn))
                continue; // nobody up: the event waits in the log
        }
        if (down[primary] > 0)
            continue; // lease grace: backlog accrues as staleness

        drainTo(lsn);
    }

    // Shutdown: let every window close and every master re-register
    // (two full jittered periods guarantee at least one beat), then
    // make sure a primary exists and has drained the whole log.
    processBoundariesThrough(fault_horizon);
    const SimTime settle =
        2 * (group_.lease.periodTicks + group_.lease.jitterTicks);
    const SimTime end_tick =
        std::max(log.horizon(), fault_horizon) + settle;
    lease.advanceTo(end_tick);
    if (!events.empty()) {
        if (!engines[primary])
            POCO_ASSERT(electPrimary(end_tick, events.size() - 1),
                        "no master available at shutdown");
        drainTo(events.size() - 1);
    }

    Outcome<CtrlRollup> fin =
        engines[primary]->finish(log.horizon());
    POCO_ASSERT(fin.value.records.size() == events.size(),
                "failover lost or duplicated log records");

    roll.rollup = std::move(fin.value);
    roll.masterLivenessFingerprint = lease.fingerprint();
    roll.fingerprint = groupFingerprint(roll);
    return {std::move(roll), fin.tier, fin.attempts,
            fin.degradation};
}

} // namespace poco::ctrl
