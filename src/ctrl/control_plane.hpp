/**
 * @file
 * The streaming master: consume an EventLog, react incrementally.
 *
 * ControlPlane replaces the batch "evaluate the whole fleet every
 * epoch" loop with an online one. It owns a HeartbeatTracker (who is
 * alive, who holds budget) and an IncrementalPlacer (the Cached /
 * Repair / WarmLp / cold ladder), and walks a totally-ordered
 * EventLog tick by tick:
 *
 *   1. advance the heartbeat tracker to the event's tick — missed
 *      beats may demote servers (Suspect, then Dead) or re-register
 *      recovered ones, changing the placement topology;
 *   2. apply the event to the modeled state (per-server LC load,
 *      active BE set, budget scale, crash flags);
 *   3. if the performance matrix changed, re-place with the cheapest
 *      sound delta: one column for a single-server LoadShift, a
 *      full same-shape refresh for a BudgetChange, a shape change
 *      whenever the BE set or the live server set moved.
 *
 * Replay contract: replay() resets every piece of state (fresh
 * tracker, fresh placer, fresh memo), so the same log produces a
 * bit-identical CtrlRollup fingerprint on every call and for every
 * thread count — the parallel kernels underneath (matrix cell
 * builds, LP pricing/pivoting) are bit-identical by construction,
 * and nothing reads the wall clock.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/incremental.hpp"
#include "ctrl/event_log.hpp"
#include "ctrl/heartbeat.hpp"
#include "util/outcome.hpp"
#include "util/units.hpp"

namespace poco::sim
{
class TelemetryAggregator;
}

namespace poco::ctrl
{

/**
 * Cell model: estimated BE throughput of pool candidate @p be
 * colocated with server @p server at LC load fraction @p load. Must
 * be a pure deterministic function — it is re-evaluated on replay.
 */
using CellModel = std::function<double(
    std::size_t be, std::size_t server, double load)>;

/** Cluster shape and initial conditions for a control-plane run. */
struct ControlPlaneConfig
{
    /** Servers under management (heartbeat-tracked, columns). */
    std::size_t servers = 4;
    /** BE candidate pool BeArrive draws from (rows). */
    std::size_t bePool = 4;
    /** Candidates active at tick 0 (clipped to bePool). */
    std::size_t initialBe = 4;
    /** LC load fraction every server starts at. */
    double initialLoad = 0.5;
    /** Power grant issued per live server. */
    Watts perServerBudget{100.0};
    /** Liveness cadence and ladder thresholds. */
    HeartbeatConfig heartbeat;
    /**
     * Bench baseline: disable every incremental rung and memo; every
     * re-place is a cold placeWithFallback. Results (assignments,
     * objectives) stay field-identical when optima are unique — only
     * tiers, attempt counts, and wall-clock move.
     */
    bool forceCold = false;
};

/** What one event did to the system (one rollup line per event). */
struct EventRecord
{
    SimTime tick = 0;
    EventKind kind = EventKind::LoadShift;
    int subject = -1;
    /** Solver rung that re-placed, or None when no solve was due. */
    SolverTier tier = SolverTier::None;
    int attempts = 0;
    /** Total matrix value of the chosen assignment (row order). */
    double objective = 0.0;
    /** FNV-1a over the assignment vector. */
    std::uint64_t assignmentFingerprint = 0;
    std::uint32_t activeBe = 0;
    std::uint32_t placeableServers = 0;
};

/** The replay's complete, fingerprintable result. */
struct CtrlRollup
{
    std::vector<EventRecord> records;
    /** Events that triggered a re-placement. */
    std::size_t resolves = 0;
    /** Incremental-ladder rung counters. */
    cluster::IncrementalStats solver;
    /** Heartbeat/liveness counters. */
    HeartbeatStats heartbeat;
    /** Undistributed budget at end of log (dead servers' grants). */
    Watts budgetPool;
    /** Tracker state fingerprint at end of log. */
    std::uint64_t livenessFingerprint = 0;
    /**
     * FNV-1a over every record field plus the liveness fingerprint
     * and final budget. No wall-clock input — the replay identity
     * tests compare this across thread counts and repeated replays.
     */
    std::uint64_t fingerprint = 0;
};

/**
 * Event-driven online master for one cluster. Construct once with
 * the model and shape; replay() any number of logs (each replay is
 * independent and internally stateless-from-scratch).
 */
class ControlPlane
{
  public:
    ControlPlane(CellModel cells, ControlPlaneConfig config,
                 cluster::SolverContext context = {});

    /**
     * Optional telemetry sink: each re-placement appends per-server
     * delta samples (appendDelta) and the replay seals one epoch at
     * the end. The sink must cover config.servers slots and is the
     * caller's to drain.
     */
    void attachTelemetry(sim::TelemetryAggregator* sink)
    {
        telemetry_ = sink;
    }

    /**
     * Run the log from a clean slate. The outcome's tier is the
     * worst rung any event needed (worseTier fold), its attempts the
     * total across events, its degradation the union.
     *
     * Note: the context's AssignmentCache is deliberately NOT used —
     * a shared memo would make a second replay hit where the first
     * missed, changing tier counters and breaking replay identity.
     * Each replay builds its own.
     */
    Outcome<CtrlRollup> replay(const EventLog& log);

    const ControlPlaneConfig& config() const { return config_; }

  private:
    CellModel cells_;
    ControlPlaneConfig config_;
    cluster::SolverContext context_;
    sim::TelemetryAggregator* telemetry_ = nullptr;
};

} // namespace poco::ctrl
