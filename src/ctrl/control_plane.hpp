/**
 * @file
 * The streaming master: consume an EventLog, react incrementally.
 *
 * ControlPlane replaces the batch "evaluate the whole fleet every
 * epoch" loop with an online one. It owns a HeartbeatTracker (who is
 * alive, who holds budget) and an IncrementalPlacer (the Cached /
 * Repair / WarmLp / cold ladder), and walks a totally-ordered
 * EventLog tick by tick:
 *
 *   1. advance the heartbeat tracker to the event's tick — missed
 *      beats may demote servers (Suspect, then Dead) or re-register
 *      recovered ones, changing the placement topology;
 *   2. apply the event to the modeled state (per-server LC load,
 *      active BE set, budget scale, crash flags);
 *   3. if the performance matrix changed, re-place with the cheapest
 *      sound delta: one column for a single-server LoadShift, a
 *      full same-shape refresh for a BudgetChange, a shape change
 *      whenever the BE set or the live server set moved.
 *
 * The per-event state machine lives in ReplayEngine so that it can
 * be driven one event at a time, checkpointed (CtrlCheckpoint), and
 * restored — the seams ctrl::MasterGroup builds failover on.
 * ControlPlane::replay() is the single-master wrapper: fresh engine,
 * whole log, one rollup.
 *
 * Backpressure (DESIGN.md §15): with backpressure enabled the
 * engine models the master's re-solve budget in logical time — an
 * admitted re-solve occupies the master for resolveCost ticks, and
 * admitted-but-unfinished re-solves queue. When an event finds the
 * queue at the admission window, the engine sheds: the ladder is
 * skipped, the IncrementalPlacer hands back the Conservative
 * identity assignment, and the event's state change (the latest
 * LoadShift level, BE churn, budget scale) is simply folded into
 * the modeled state so the next admitted re-solve coalesces every
 * superseded value (LoadShift-last-wins) under one Shape re-sync.
 * Shed decisions are recorded on the EventRecord and mixed into the
 * rollup fingerprint — they are a pure function of (log, config),
 * never of wall clock, so replay stays bit-identical for any
 * thread count.
 *
 * Replay contract: replay() resets every piece of state (fresh
 * tracker, fresh placer, fresh memo), so the same log produces a
 * bit-identical CtrlRollup fingerprint on every call and for every
 * thread count — the parallel kernels underneath (matrix cell
 * builds, LP pricing/pivoting) are bit-identical by construction,
 * and nothing reads the wall clock.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/incremental.hpp"
#include "ctrl/event_log.hpp"
#include "ctrl/heartbeat.hpp"
#include "math/solver_cache.hpp"
#include "util/outcome.hpp"
#include "util/units.hpp"

namespace poco::sim
{
class TelemetryAggregator;
}

namespace poco::ctrl
{

/**
 * Cell model: estimated BE throughput of pool candidate @p be
 * colocated with server @p server at LC load fraction @p load. Must
 * be a pure deterministic function — it is re-evaluated on replay.
 */
using CellModel = std::function<double(
    std::size_t be, std::size_t server, double load)>;

/**
 * Bounded event-admission window (logical-time backpressure).
 * Costs are logical ticks, not wall clock, so shed decisions are
 * deterministic and replayable.
 */
struct BackpressureConfig
{
    /** Off by default: every matrix change is re-solved exactly. */
    bool enabled = false;
    /**
     * Maximum admitted-but-unfinished re-solves. An event whose
     * re-solve would be the window+1'th in flight is shed to the
     * Conservative tier instead of queueing.
     */
    std::size_t window = 8;
    /** Logical ticks one admitted ladder re-solve occupies. */
    SimTime resolveCost = 100 * kMillisecond;
};

/** Cluster shape and initial conditions for a control-plane run. */
struct ControlPlaneConfig
{
    /** Servers under management (heartbeat-tracked, columns). */
    std::size_t servers = 4;
    /** BE candidate pool BeArrive draws from (rows). */
    std::size_t bePool = 4;
    /** Candidates active at tick 0 (clipped to bePool). */
    std::size_t initialBe = 4;
    /** LC load fraction every server starts at. */
    double initialLoad = 0.5;
    /** Power grant issued per live server. */
    Watts perServerBudget{100.0};
    /** Liveness cadence and ladder thresholds. */
    HeartbeatConfig heartbeat;
    /** Event-admission window; disabled unless enabled is set. */
    BackpressureConfig backpressure;
    /**
     * Bench baseline: disable every incremental rung and memo; every
     * re-place is a cold placeWithFallback. Results (assignments,
     * objectives) stay field-identical when optima are unique — only
     * tiers, attempt counts, and wall-clock move.
     */
    bool forceCold = false;
};

/** What one event did to the system (one rollup line per event). */
struct EventRecord
{
    SimTime tick = 0;
    EventKind kind = EventKind::LoadShift;
    int subject = -1;
    /** Solver rung that re-placed, or None when no solve was due. */
    SolverTier tier = SolverTier::None;
    int attempts = 0;
    /** Backpressure shed this event's re-solve (tier Conservative). */
    bool shed = false;
    /** Total matrix value of the chosen assignment (row order). */
    double objective = 0.0;
    /** FNV-1a over the assignment vector. */
    std::uint64_t assignmentFingerprint = 0;
    std::uint32_t activeBe = 0;
    std::uint32_t placeableServers = 0;
};

/** The replay's complete, fingerprintable result. */
struct CtrlRollup
{
    std::vector<EventRecord> records;
    /** Events that triggered a re-placement (sheds included). */
    std::size_t resolves = 0;
    /** Re-solves shed to the Conservative tier (backpressure). */
    std::size_t sheds = 0;
    /** Superseded events folded into a later exact re-sync. */
    std::size_t coalesced = 0;
    /** High-water mark of the admitted re-solve queue. */
    std::size_t maxQueueDepth = 0;
    /** Incremental-ladder rung counters. */
    cluster::IncrementalStats solver;
    /** Heartbeat/liveness counters. */
    HeartbeatStats heartbeat;
    /** Undistributed budget at end of log (dead servers' grants). */
    Watts budgetPool;
    /** Tracker state fingerprint at end of log. */
    std::uint64_t livenessFingerprint = 0;
    /**
     * FNV-1a over every record field plus the liveness fingerprint
     * and final budget. No wall-clock input — the replay identity
     * tests compare this across thread counts and repeated replays.
     */
    std::uint64_t fingerprint = 0;
    /**
     * Like fingerprint, but over result semantics only: tiers and
     * attempt counters are excluded. A failover catch-up re-solves
     * cold where the uninterrupted oracle ran warm, so the two runs
     * legitimately differ in tier counters while every assignment,
     * objective, shed decision, liveness bit, and milliwatt of
     * budget must agree — this is the fingerprint the chaos
     * invariants compare against the oracle.
     */
    std::uint64_t semanticFingerprint = 0;
};

/**
 * A master's cheap durable state after applying events [0, lsn):
 * the heartbeat ledger (checkpoint-by-copy, see heartbeat.hpp), the
 * modeled cluster state, the partial rollup, and the backpressure
 * queue. Deliberately NOT checkpointed: the IncrementalPlacer's
 * engines and memo — solver state is a pure accelerator, and a
 * restored master re-arms it from scratch (exactness of every rung
 * keeps the answers identical; only tiers differ).
 */
struct CtrlCheckpoint
{
    explicit CtrlCheckpoint(HeartbeatTracker tracker_state)
        : tracker(std::move(tracker_state))
    {}

    /** Events [0, lsn) are reflected in this state. */
    std::size_t lsn = 0;
    /** Tick of the last applied event (monotonic resume point). */
    SimTime tick = 0;
    HeartbeatTracker tracker;
    std::vector<char> active;
    std::vector<std::size_t> activeList;
    std::vector<double> load;
    double budgetScale = 1.0;
    std::vector<std::size_t> prevAlive;
    /** Partial rollup (records for events [0, lsn) + accumulators). */
    std::vector<EventRecord> records;
    std::size_t resolves = 0;
    std::size_t sheds = 0;
    std::size_t coalesced = 0;
    std::size_t maxQueueDepth = 0;
    SolverTier worst = SolverTier::None;
    int attempts = 0;
    Degradation degradation;
    /** Outstanding re-solve completion ticks (ascending). */
    std::vector<SimTime> pending;
    /** Sheds since the last exact solve (re-sync debt). */
    std::size_t dirtySheds = 0;

    /** FNV-1a over every field; restore round-trips must preserve it. */
    [[nodiscard]] std::uint64_t fingerprint() const;
};

/**
 * The per-event replay state machine. Apply events one at a time,
 * checkpoint() at any LSN boundary, restore from a checkpoint and
 * keep applying, finish() exactly once for the rollup. Not copyable
 * or movable (the placer points into the engine's own memo);
 * MasterGroup heap-allocates one per live master.
 */
class ReplayEngine
{
  public:
    /** Fresh engine: state as of LSN 0 (nothing applied). */
    ReplayEngine(const CellModel& cells,
                 const ControlPlaneConfig& config,
                 cluster::SolverContext context,
                 sim::TelemetryAggregator* telemetry = nullptr);

    /** Restored engine: state as of @p checkpoint (solver cold). */
    ReplayEngine(const CellModel& cells,
                 const ControlPlaneConfig& config,
                 cluster::SolverContext context,
                 const CtrlCheckpoint& checkpoint,
                 sim::TelemetryAggregator* telemetry = nullptr);

    ReplayEngine(const ReplayEngine&) = delete;
    ReplayEngine& operator=(const ReplayEngine&) = delete;

    /** Apply the next event. Ticks must not go backwards. */
    void apply(const ControlEvent& event);

    /** Events applied so far — the engine's LSN. */
    std::size_t applied() const { return applied_; }

    /** Snapshot the cheap state (see CtrlCheckpoint). */
    CtrlCheckpoint checkpoint() const;

    /** Pre-size the record vector (log length known up front). */
    void reserveRecords(std::size_t events);

    /**
     * Seal the run: telemetry epoch, budget-conservation assert,
     * fingerprints. Call exactly once; the engine is spent after.
     * The outcome's tier is the worst rung any event needed, its
     * attempts the total across events, its degradation the union.
     */
    Outcome<CtrlRollup> finish(SimTime horizon);

  private:
    /** Owned copies: a caller may hand us temporaries and walk away
     *  (the engine can outlive any one call site across failovers). */
    CellModel cells_;
    ControlPlaneConfig config_;
    /** Declared before the context/placer that point into it. */
    math::AssignmentCache memo_;
    cluster::SolverContext context_;
    sim::TelemetryAggregator* telemetry_;
    cluster::IncrementalPlacer placer_;
    HeartbeatTracker tracker_;

    std::size_t applied_ = 0;
    SimTime last_tick_ = 0;
    std::vector<char> active_;
    std::vector<std::size_t> active_list_;
    std::vector<double> load_;
    double budget_scale_ = 1.0;
    std::vector<std::size_t> prev_alive_;

    std::vector<EventRecord> records_;
    std::size_t resolves_ = 0;
    std::size_t sheds_ = 0;
    std::size_t coalesced_ = 0;
    std::size_t max_queue_depth_ = 0;
    SolverTier worst_ = SolverTier::None;
    int total_attempts_ = 0;
    Degradation degradation_;

    std::vector<SimTime> pending_;
    std::size_t dirty_sheds_ = 0;
    bool finished_ = false;
};

/**
 * Event-driven online master for one cluster. Construct once with
 * the model and shape; replay() any number of logs (each replay is
 * independent and internally stateless-from-scratch).
 */
class ControlPlane
{
  public:
    ControlPlane(CellModel cells, ControlPlaneConfig config,
                 cluster::SolverContext context = {});

    /**
     * Optional telemetry sink: each re-placement appends per-server
     * delta samples (appendDelta) and the replay seals one epoch at
     * the end. The sink must cover config.servers slots and is the
     * caller's to drain.
     */
    void attachTelemetry(sim::TelemetryAggregator* sink)
    {
        telemetry_ = sink;
    }

    /**
     * Run the log from a clean slate. The outcome's tier is the
     * worst rung any event needed (worseTier fold), its attempts the
     * total across events, its degradation the union.
     *
     * Note: the context's AssignmentCache is deliberately NOT used —
     * a shared memo would make a second replay hit where the first
     * missed, changing tier counters and breaking replay identity.
     * Each replay builds its own.
     */
    Outcome<CtrlRollup> replay(const EventLog& log);

    const ControlPlaneConfig& config() const { return config_; }

  private:
    CellModel cells_;
    ControlPlaneConfig config_;
    cluster::SolverContext context_;
    sim::TelemetryAggregator* telemetry_ = nullptr;
};

} // namespace poco::ctrl
