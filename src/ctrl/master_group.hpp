/**
 * @file
 * Master failover: a primary/standby group over one ReplayEngine.
 *
 * The single-master ControlPlane assumes the master itself never
 * fails. MasterGroup drops that assumption: a group of M masters
 * shares the totally-ordered EventLog, exactly one (the primary)
 * applies events, and a lease ladder — the same jittered
 * HeartbeatTracker the data plane uses for servers, issued with
 * zero-watt grants — decides when the primary's lease has expired
 * and a standby must take over (DESIGN.md §15).
 *
 * Durability model: the primary checkpoints its cheap state
 * (CtrlCheckpoint) every checkpointEvery applied events. A standby
 * elected after a master *kill* restores the latest checkpoint and
 * replays the log suffix from that LSN; a master recovering from a
 * *pause* still holds its own engine and catches up warm from its
 * own LSN. Both paths re-derive bit-identical semantics — the
 * heartbeat ledger restores by copy (granted-flag idempotence, see
 * heartbeat.hpp), every placer rung is exact, and shed decisions
 * are a pure function of the checkpointed backpressure queue — so
 * the post-catch-up rollup matches an uninterrupted oracle run on
 * the semantic fingerprint, conserves budget to the milliwatt, and
 * never double-grants.
 *
 * Failure detection is event-driven: the group notices a dead
 * primary when the next event arrives (the lease is advanced to the
 * event's tick first), so an outage that ends before any event
 * lands goes unnoticed — exactly the staleness the
 * maxStalenessEvents counter bounds.
 *
 * Fault windows come from the shared fault::FaultPlan vocabulary:
 * MasterKill (process lost, engine destroyed) and MasterPause
 * (lease lost, state retained), with window.server naming the
 * master index. All other kinds are ignored here — they belong to
 * the server-level FaultInjector or to EventLog lowering.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "ctrl/control_plane.hpp"
#include "fault/fault_plan.hpp"

namespace poco::ctrl
{

/** Group shape and durability cadence. */
struct MasterGroupConfig
{
    /** Masters in the group (primary + standbys). */
    std::size_t masters = 2;
    /**
     * Lease cadence/thresholds for master liveness. Deliberately
     * the server HeartbeatConfig: the election ladder *is* the
     * heartbeat ladder, seeded so lease jitter is replayable.
     */
    HeartbeatConfig lease;
    /** Checkpoint the primary every this many applied events. */
    std::size_t checkpointEvery = 16;
};

/** One primary hand-off (or self-restart, fromMaster==toMaster). */
struct FailoverRecord
{
    /** Detection tick (the event that found the lease expired). */
    SimTime tick = 0;
    int fromMaster = 0;
    int toMaster = 0;
    /** Log position the group had reached when it failed over. */
    std::size_t atLsn = 0;
    /** LSN the new primary resumed from (checkpoint or own state). */
    std::size_t resumeLsn = 0;
    /** True when the new primary restored a checkpoint (cold). */
    bool restored = false;
    /** Events the new primary replayed to catch up (incl. current). */
    std::size_t catchUpEvents = 0;
};

/** The group's complete, fingerprintable result. */
struct MasterGroupRollup
{
    /** The surviving primary's rollup — one record per log event. */
    CtrlRollup rollup;
    std::vector<FailoverRecord> failovers;
    /** Checkpoints taken across the run. */
    std::size_t checkpoints = 0;
    /** Worst event backlog any drain had to clear (bounded
     *  staleness invariant). */
    std::size_t maxStalenessEvents = 0;
    /** Lease tracker fingerprint (master liveness history). */
    std::uint64_t masterLivenessFingerprint = 0;
    /** FNV-1a over the rollup fingerprint, every failover record,
     *  the lease fingerprint, and the counters above. */
    std::uint64_t fingerprint = 0;
};

/**
 * Primary/standby replay group. Construct once; each run() is
 * independent (fresh engines, fresh lease), so the same
 * (log, faults) pair produces a bit-identical rollup on every call
 * and for any thread count.
 */
class MasterGroup
{
  public:
    MasterGroup(CellModel cells, ControlPlaneConfig config,
                MasterGroupConfig group,
                cluster::SolverContext context = {});

    /**
     * Drive the log through the group under the given master fault
     * windows. The outcome's tier/attempts/degradation are the
     * surviving primary's (ReplayEngine::finish).
     */
    Outcome<MasterGroupRollup> run(const EventLog& log,
                                   const fault::FaultPlan& faults);

    const ControlPlaneConfig& config() const { return config_; }
    const MasterGroupConfig& group() const { return group_; }

  private:
    CellModel cells_;
    ControlPlaneConfig config_;
    MasterGroupConfig group_;
    cluster::SolverContext context_;
};

} // namespace poco::ctrl
