/**
 * @file
 * Time-sharing multiple best-effort jobs on one server's spare
 * capacity (Section V-G: "If there are more than one best-effort
 * application, they can be scheduled to time-share the server (e.g.
 * first-come first-served, shortest job first)").
 *
 * A BeJob is a finite amount of best-effort work (in the normalized
 * throughput units of wl::BeApp). The scheduler runs one job at a
 * time in the server's secondary slot, swapping applications at job
 * boundaries (FCFS, SJF) or at fixed quanta (round-robin), while the
 * usual machinery — primary controller, spare hand-off, power
 * throttler — keeps running untouched.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "server/server_manager.hpp"

namespace poco::server
{

/** A finite unit of best-effort work. */
struct BeJob
{
    std::string name;
    const wl::BeApp* app = nullptr;
    /** Remaining work in normalized throughput-seconds. */
    double work = 0.0;
};

/** Job ordering policy. */
enum class SchedulePolicy
{
    Fcfs,       ///< first-come first-served (submission order)
    Sjf,        ///< shortest job first (non-preemptive)
    RoundRobin, ///< rotate across unfinished jobs every quantum
};

const char* schedulePolicyName(SchedulePolicy policy);

/** Per-job outcome. */
struct JobOutcome
{
    std::string name;
    /** Completion time, or -1 when unfinished at the deadline. */
    SimTime completion = -1;
    double workDone = 0.0;

    bool finished() const { return completion >= 0; }
};

/** Aggregate schedule outcome. */
struct ScheduleResult
{
    std::vector<JobOutcome> jobs;
    /** Completion of the last job (deadline when unfinished). */
    SimTime makespan = 0;
    ServerStats stats;
    bool allFinished = false;

    /** Mean completion time over finished jobs, seconds. */
    double meanCompletionSeconds() const;
    std::size_t finishedCount() const;
};

/** Scheduler configuration. */
struct SchedulerConfig
{
    SchedulePolicy policy = SchedulePolicy::Fcfs;
    /** Round-robin quantum (ignored by FCFS/SJF). */
    SimTime quantum = 10 * kSecond;
    /** Progress-check period (also bounds job-switch latency). */
    SimTime tick = 100 * kMillisecond;
    ServerManagerConfig server;
};

/**
 * Run a batch of best-effort jobs beside a latency-critical primary
 * until all jobs finish or @p deadline passes.
 *
 * @param controller Primary-app controller (ownership transferred).
 * @param trace Offered-load trace for the primary.
 */
ScheduleResult
runBeSchedule(const wl::LcApp& lc, std::vector<BeJob> jobs,
              Watts power_cap,
              std::unique_ptr<PrimaryController> controller,
              wl::LoadTrace trace, SimTime deadline,
              SchedulerConfig config = {});

} // namespace poco::server
