/**
 * @file
 * Server manager: wires the primary controller, the best-effort
 * throttler, the load trace, and telemetry onto the event queue, and
 * provides a one-call scenario runner used by the cluster manager,
 * the benches, and the tests.
 */

#pragma once

#include <memory>

#include "server/be_throttler.hpp"
#include "server/colocated_server.hpp"
#include "server/primary_controller.hpp"
#include "sim/event_queue.hpp"
#include "sim/telemetry.hpp"
#include "wl/load_trace.hpp"

namespace poco::runtime
{
class ThreadPool;
}

namespace poco::server
{

/** Periods and tunables of the management loops. */
struct ServerManagerConfig
{
    /** Primary controller decision period (paper: every second). */
    SimTime controlPeriod = 1 * kSecond;
    /** BE power-throttle period (paper: every 100 ms). */
    SimTime throttlePeriod = 100 * kMillisecond;
    /** Telemetry sampling period. */
    SimTime telemetryPeriod = 100 * kMillisecond;
    /** Offered-load update period (trace resolution). */
    SimTime loadPeriod = 1 * kSecond;
    /** Settling time excluded from the reported statistics. */
    SimTime warmup = 60 * kSecond;

    ControllerConfig controller;
    ThrottlerConfig throttler;
};

/** Outcome of one managed run. */
struct ServerRunResult
{
    ServerStats stats;
    /** Average power as a fraction of the provisioned capacity. */
    double powerUtilization = 0.0;
    /** Mean tail-latency slack of the primary over the run. */
    double averageSlack = 0.0;
    /** Fraction of samples with slack below the controller target. */
    double slackShortfallFraction = 0.0;
};

/**
 * Drives one ColocatedServer on an event queue.
 *
 * The manager owns its controller but borrows the server and the
 * queue; both must outlive it. Call attach() once to register the
 * periodic loops.
 */
class ServerManager
{
  public:
    ServerManager(ColocatedServer& server,
                  std::unique_ptr<PrimaryController> controller,
                  wl::LoadTrace trace,
                  ServerManagerConfig config = {});

    /** Register the management loops starting at queue.now(). */
    void attach(sim::EventQueue& queue);

    const ColocatedServer& server() const { return *server_; }
    ColocatedServer& server() { return *server_; }
    const sim::TelemetryRecorder& telemetry() const
    {
        return telemetry_;
    }
    const ServerManagerConfig& config() const { return config_; }

    /** Summarize statistics accumulated since the last reset. */
    ServerRunResult result() const;

    /** Forget warm-up history (stats and slack samples). */
    void resetStats(SimTime now);

  private:
    void loadTick(SimTime now);
    void controlTick(SimTime now);
    void throttleTick(SimTime now);
    void telemetryTick(SimTime now);

    ColocatedServer* server_;
    std::unique_ptr<PrimaryController> controller_;
    wl::LoadTrace trace_;
    ServerManagerConfig config_;
    BeThrottler throttler_;
    sim::EventQueue* queue_ = nullptr;
    sim::TelemetryRecorder telemetry_;

    /** Slack tracking for result(). */
    double slack_sum_ = 0.0;
    std::size_t slack_samples_ = 0;
    std::size_t slack_shortfalls_ = 0;
};

/**
 * Convenience: build a server, manage it with the given controller
 * over @p duration of simulated time, and report the results
 * (statistics exclude the configured warm-up).
 *
 * @param be Pass nullptr to run the primary alone.
 */
ServerRunResult
runServerScenario(const wl::LcApp& lc, const wl::BeApp* be,
                  Watts power_cap,
                  std::unique_ptr<PrimaryController> controller,
                  wl::LoadTrace trace, SimTime duration,
                  ServerManagerConfig config = {});

/** One entry for the batch scenario runner. */
struct ServerScenario
{
    const wl::LcApp* lc = nullptr; ///< required
    const wl::BeApp* be = nullptr; ///< null runs the primary alone
    Watts powerCap = 0.0;
    std::unique_ptr<PrimaryController> controller;
    wl::LoadTrace trace = wl::LoadTrace::constant(0.5);
    SimTime duration = 0;
    ServerManagerConfig config;
};

/**
 * Run many scenarios concurrently on @p pool (serially when null).
 * Every scenario owns its ColocatedServer and EventQueue, so the
 * simulations share no state; result i is bit-identical to a serial
 * runServerScenario() call with scenarios[i]'s arguments.
 */
std::vector<ServerRunResult>
runServerScenarios(std::vector<ServerScenario> scenarios,
                   runtime::ThreadPool* pool = nullptr);

} // namespace poco::server
