/**
 * @file
 * Server manager: wires the primary controller, the best-effort
 * throttler, the load trace, and telemetry onto the event queue, and
 * provides a one-call scenario runner used by the cluster manager,
 * the benches, and the tests.
 */

#pragma once

#include <memory>

#include "fault/fault_injector.hpp"
#include "server/be_throttler.hpp"
#include "server/colocated_server.hpp"
#include "server/primary_controller.hpp"
#include "sim/event_queue.hpp"
#include "sim/telemetry.hpp"
#include "wl/load_trace.hpp"

namespace poco::runtime
{
class ThreadPool;
}

namespace poco::server
{

/**
 * Degradation-ladder tunables (DESIGN.md §10). The watchdog only
 * runs when a fault injector is wired in; the fault-free path never
 * evaluates it.
 */
struct WatchdogConfig
{
    bool enabled = true;
    /** Readings above cap * factor are treated as sensor garbage. */
    double maxCredibleFactor = 1.6;
    /** Consecutive bad throttle ticks before entering degraded. */
    int faultTicksToDegrade = 3;
    /** Consecutive sane ticks before leaving degraded. */
    int saneTicksToRecover = 30;
    /**
     * Frozen identical readings before a deliberate DVFS probe. A
     * steady fault-free system also produces identical readings, so
     * every probe interval pays a 100 ms throughput dip — the
     * default probes a quiet meter every ~5 s.
     */
    int frozenTicksToProbe = 50;
    /** Degraded ticks of overshoot evidence before BE eviction. */
    int overshootTicksToEvict = 20;
    /** Watts above cap that count as overshoot while degraded. */
    Watts overshootMargin{1.0};
};

/** Periods and tunables of the management loops. */
struct ServerManagerConfig
{
    /** Primary controller decision period (paper: every second). */
    SimTime controlPeriod = 1 * kSecond;
    /** BE power-throttle period (paper: every 100 ms). */
    SimTime throttlePeriod = 100 * kMillisecond;
    /** Telemetry sampling period. */
    SimTime telemetryPeriod = 100 * kMillisecond;
    /** Offered-load update period (trace resolution). */
    SimTime loadPeriod = 1 * kSecond;
    /** Settling time excluded from the reported statistics. */
    SimTime warmup = 60 * kSecond;
    /**
     * Copy the run's telemetry samples into ServerRunResult so
     * aggregation layers (the fleet's epoch rollups) can fold them
     * off-thread after the simulation finished. Off by default: a
     * long run retains up to ~2^20 samples.
     */
    bool keepTelemetry = false;

    ControllerConfig controller;
    ThrottlerConfig throttler;
    WatchdogConfig watchdog;
};

/** What the watchdog saw and did over a run (reporting only). */
struct FaultRunStats
{
    long degradedTicks = 0;    ///< throttle ticks spent degraded
    long degradedEntries = 0;  ///< normal -> degraded transitions
    long evictions = 0;        ///< BE kills from sustained overshoot
    long invalidReadings = 0;  ///< NaN / negative / implausible reads
    long unconfirmedTicks = 0; ///< commands that did not read back
    long probes = 0;           ///< deliberate DVFS probes issued
    /** Ground-truth integral of max(0, power - cap). */
    Joules capOvershootJoules;
    /** Ground-truth max(0, peak power - cap). */
    Watts maxOvershoot;
};

/** Outcome of one managed run. */
struct ServerRunResult
{
    ServerStats stats;
    /** Average power as a fraction of the provisioned capacity. */
    double powerUtilization = 0.0;
    /** Mean tail-latency slack of the primary over the run. */
    double averageSlack = 0.0;
    /** Fraction of samples with slack below the controller target. */
    double slackShortfallFraction = 0.0;
    /** Degradation-ladder counters (all zero on fault-free runs). */
    FaultRunStats faults;
    /**
     * The run's telemetry samples, oldest first. Empty unless
     * ServerManagerConfig::keepTelemetry was set.
     */
    std::vector<sim::TelemetrySample> telemetry;
};

/**
 * Drives one ColocatedServer on an event queue.
 *
 * The manager owns its controller but borrows the server and the
 * queue; both must outlive it. Call attach() once to register the
 * periodic loops.
 */
class ServerManager
{
  public:
    ServerManager(ColocatedServer& server,
                  std::unique_ptr<PrimaryController> controller,
                  wl::LoadTrace trace,
                  ServerManagerConfig config = {});

    /** Register the management loops starting at queue.now(). */
    void attach(sim::EventQueue& queue);

    /**
     * Route meter reads and throttle commands through @p injector
     * (borrowed; may be nullptr to disconnect). Call before attach();
     * the injector itself must be attached to the same queue first so
     * its window-boundary events fire ahead of same-time ticks. With
     * an injector wired in and watchdog.enabled, the degradation
     * ladder (DESIGN.md §10) arms on single-secondary servers.
     */
    void setFaultInjector(fault::FaultInjector* injector);

    /** True while the watchdog holds the BE at the degraded floor. */
    bool degraded() const { return degraded_; }

    const ColocatedServer& server() const { return *server_; }
    ColocatedServer& server() { return *server_; }
    const sim::TelemetryRecorder& telemetry() const
    {
        return telemetry_;
    }
    const ServerManagerConfig& config() const { return config_; }

    /** Summarize statistics accumulated since the last reset. */
    ServerRunResult result() const;

    /** Forget warm-up history (stats and slack samples). */
    void resetStats(SimTime now);

  private:
    void loadTick(SimTime now);
    void controlTick(SimTime now);
    void throttleTick(SimTime now);
    void telemetryTick(SimTime now);

    /** The power reading the loops see (injector-distorted). */
    Watts measuredPower(SimTime now);
    /** Install a BE allocation through the actuator shim. */
    void applyBeAlloc(SimTime now, std::size_t slot,
                      const sim::Allocation& next);
    /** True when the degradation ladder is armed for this run. */
    bool watchdogArmed() const;
    /**
     * One watchdog step; returns true when the reactive throttler
     * must hold off this tick (degraded clamp or in-flight probe).
     */
    bool watchdogTick(SimTime now, Watts measured);

    ColocatedServer* server_;
    std::unique_ptr<PrimaryController> controller_;
    wl::LoadTrace trace_;
    ServerManagerConfig config_;
    BeThrottler throttler_;
    sim::EventQueue* queue_ = nullptr;
    sim::TelemetryRecorder telemetry_;
    fault::FaultInjector* injector_ = nullptr;

    /** Slack tracking for result(). */
    double slack_sum_ = 0.0;
    std::size_t slack_samples_ = 0;
    std::size_t slack_shortfalls_ = 0;

    /** Watchdog state (DESIGN.md §10; untouched without injector). */
    bool degraded_ = false;
    bool conservative_regrant_ = false;
    int bad_streak_ = 0;
    int sane_streak_ = 0;
    int frozen_streak_ = 0;
    int overshoot_streak_ = 0;
    bool have_last_reading_ = false;
    Watts last_reading_;
    bool command_pending_ = false;
    sim::Allocation commanded_;
    bool probe_pending_ = false;
    sim::Allocation pre_probe_;
    FaultRunStats fault_stats_;
};

/**
 * Convenience: build a server, manage it with the given controller
 * over @p duration of simulated time, and report the results
 * (statistics exclude the configured warm-up).
 *
 * @param be Pass nullptr to run the primary alone.
 * @param faults Optional fault schedule; nullptr or an empty plan
 *        runs the byte-identical fault-free path.
 */
ServerRunResult
runServerScenario(const wl::LcApp& lc, const wl::BeApp* be,
                  Watts power_cap,
                  std::unique_ptr<PrimaryController> controller,
                  wl::LoadTrace trace, SimTime duration,
                  ServerManagerConfig config = {},
                  const fault::FaultPlan* faults = nullptr);

/** One entry for the batch scenario runner. */
struct ServerScenario
{
    const wl::LcApp* lc = nullptr; ///< required
    const wl::BeApp* be = nullptr; ///< null runs the primary alone
    Watts powerCap;
    std::unique_ptr<PrimaryController> controller;
    wl::LoadTrace trace = wl::LoadTrace::constant(0.5);
    SimTime duration = 0;
    ServerManagerConfig config;
    /** Borrowed fault schedule; nullptr/empty = fault-free. */
    const fault::FaultPlan* faults = nullptr;
};

/**
 * Run many scenarios concurrently on @p pool (serially when null).
 * Every scenario owns its ColocatedServer and EventQueue, so the
 * simulations share no state; result i is bit-identical to a serial
 * runServerScenario() call with scenarios[i]'s arguments.
 */
std::vector<ServerRunResult>
runServerScenarios(std::vector<ServerScenario> scenarios,
                   runtime::ThreadPool* pool = nullptr);

} // namespace poco::server
