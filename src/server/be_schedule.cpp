#include "server/be_schedule.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace poco::server
{

const char*
schedulePolicyName(SchedulePolicy policy)
{
    switch (policy) {
      case SchedulePolicy::Fcfs:       return "fcfs";
      case SchedulePolicy::Sjf:        return "sjf";
      case SchedulePolicy::RoundRobin: return "round-robin";
    }
    return "?";
}

double
ScheduleResult::meanCompletionSeconds() const
{
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& job : jobs) {
        if (job.finished()) {
            sum += toSeconds(job.completion);
            ++n;
        }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

std::size_t
ScheduleResult::finishedCount() const
{
    std::size_t n = 0;
    for (const auto& job : jobs)
        n += job.finished();
    return n;
}

namespace
{

/** Bookkeeping driver living alongside the server manager. */
class Scheduler
{
  public:
    Scheduler(ColocatedServer& server, std::vector<BeJob> jobs,
              SchedulerConfig config)
        : server_(&server), config_(config)
    {
        for (auto& job : jobs) {
            POCO_REQUIRE(job.app != nullptr,
                         "job must carry an application");
            POCO_REQUIRE(job.work > 0.0,
                         "job work must be positive");
            jobs_.push_back(std::move(job));
            outcomes_.push_back(JobOutcome{jobs_.back().name, -1,
                                           0.0});
            remaining_.push_back(jobs_.back().work);
        }
        if (config_.policy == SchedulePolicy::Sjf) {
            order_.resize(jobs_.size());
            for (std::size_t i = 0; i < jobs_.size(); ++i)
                order_[i] = i;
            std::stable_sort(order_.begin(), order_.end(),
                             [&](std::size_t a, std::size_t b) {
                                 return jobs_[a].work <
                                        jobs_[b].work;
                             });
        } else {
            for (std::size_t i = 0; i < jobs_.size(); ++i)
                order_.push_back(i);
        }
    }

    void
    attach(sim::EventQueue& queue)
    {
        queue_ = &queue;
        switchTo(queue.now(), nextUnfinished(0));
        queue.schedule(queue.now() + config_.tick,
                       [this](SimTime t) { tick(t); });
    }

    bool allDone() const { return done_ == jobs_.size(); }

    const std::vector<JobOutcome>& outcomes() const
    {
        return outcomes_;
    }

    SimTime lastCompletion() const { return last_completion_; }

  private:
    std::size_t
    nextUnfinished(std::size_t from) const
    {
        for (std::size_t k = 0; k < order_.size(); ++k) {
            const std::size_t idx =
                order_[(from + k) % order_.size()];
            if (remaining_[idx] > 0.0)
                return idx;
        }
        return jobs_.size(); // none
    }

    void
    switchTo(SimTime now, std::size_t job)
    {
        current_ = job;
        server_->setBeApp(now, 0,
                          job < jobs_.size() ? jobs_[job].app
                                             : nullptr);
        work_mark_ = server_->beWorkAt(0);
        quantum_start_ = now;
    }

    void
    tick(SimTime now)
    {
        // Account progress of the running job.
        if (current_ < jobs_.size()) {
            const double total = server_->beWorkAt(0);
            const double delta = total - work_mark_;
            work_mark_ = total;
            remaining_[current_] -= delta;
            outcomes_[current_].workDone += delta;
            if (remaining_[current_] <= 0.0) {
                outcomes_[current_].completion = now;
                last_completion_ = now;
                ++done_;
                // Position in order_ of the finished job, so RR
                // continues from the successor.
                switchTo(now, nextUnfinished(positionOf(current_)));
            } else if (config_.policy ==
                           SchedulePolicy::RoundRobin &&
                       now - quantum_start_ >= config_.quantum) {
                const std::size_t next =
                    nextUnfinished(positionOf(current_) + 1);
                if (next != current_)
                    switchTo(now, next);
                else
                    quantum_start_ = now;
            }
        }
        if (!allDone())
            queue_->schedule(now + config_.tick,
                             [this](SimTime t) { tick(t); });
    }

    std::size_t
    positionOf(std::size_t job) const
    {
        for (std::size_t k = 0; k < order_.size(); ++k)
            if (order_[k] == job)
                return k;
        poco::panic("job missing from schedule order");
    }

    ColocatedServer* server_;
    SchedulerConfig config_;
    sim::EventQueue* queue_ = nullptr;

    std::vector<BeJob> jobs_;
    std::vector<double> remaining_;
    std::vector<JobOutcome> outcomes_;
    std::vector<std::size_t> order_;
    std::size_t current_ = 0;
    std::size_t done_ = 0;
    double work_mark_ = 0.0;
    SimTime quantum_start_ = 0;
    SimTime last_completion_ = 0;
};

} // namespace

ScheduleResult
runBeSchedule(const wl::LcApp& lc, std::vector<BeJob> jobs,
              Watts power_cap,
              std::unique_ptr<PrimaryController> controller,
              wl::LoadTrace trace, SimTime deadline,
              SchedulerConfig config)
{
    POCO_REQUIRE(!jobs.empty(), "schedule needs at least one job");
    POCO_REQUIRE(deadline > 0, "deadline must be positive");
    POCO_REQUIRE(config.tick > 0, "scheduler tick must be positive");
    POCO_REQUIRE(config.quantum >= config.tick,
                 "quantum must be at least one tick");

    sim::EventQueue queue;
    // One secondary slot; the scheduler swaps applications in it.
    ColocatedServer server(lc, jobs.front().app, power_cap);
    ServerManager manager(server, std::move(controller),
                          std::move(trace), config.server);
    Scheduler scheduler(server, std::move(jobs), config);

    manager.attach(queue);
    scheduler.attach(queue);

    // Run until all jobs finish or the deadline passes. Stepping in
    // chunks lets us stop early without draining the calendar.
    const SimTime chunk = 10 * kSecond;
    while (queue.now() < deadline && !scheduler.allDone())
        queue.runUntil(std::min(deadline, queue.now() + chunk));
    server.advanceTo(queue.now());

    ScheduleResult result;
    result.jobs = scheduler.outcomes();
    result.allFinished = scheduler.allDone();
    result.makespan =
        result.allFinished ? scheduler.lastCompletion() : deadline;
    result.stats = server.stats();
    return result;
}

} // namespace poco::server
