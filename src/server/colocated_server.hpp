/**
 * @file
 * A simulated server running one latency-critical primary and any
 * number of best-effort secondaries.
 *
 * The paper's evaluation colocates a single secondary; Section V-G
 * sketches multiple secondaries via time-sharing or spatial sharing
 * of the spare resources as future work. The runtime supports both:
 * the secondary's application can be swapped at a job boundary
 * (time-sharing, see be_schedule.hpp) and several secondaries can
 * hold disjoint slices of the spare at once (spatial sharing, see
 * spatial_share.hpp).
 *
 * State is piecewise constant: it changes only when the offered load
 * or an allocation changes. Between changes the server integrates
 * energy, best-effort work, and SLO-compliance time, so long runs
 * are exact regardless of event spacing.
 */

#pragma once

#include <vector>

#include "sim/allocation.hpp"
#include "sim/power_meter.hpp"
#include "util/units.hpp"
#include "wl/be_app.hpp"
#include "wl/lc_app.hpp"

namespace poco::server
{

/** Aggregated run statistics (denominator: elapsed time). */
struct ServerStats
{
    SimTime elapsed = 0;
    Joules energyJoules;
    double beWorkDone = 0.0;      ///< integral of total BE throughput
    SimTime sloViolationTime = 0; ///< time with p99 above the SLO
    SimTime cappedTime = 0;       ///< time any BE app ran throttled
    Watts maxPower;
    /** Integral of max(0, power - cap) — ground-truth cap damage. */
    Joules capOvershootJoules;

    Watts averagePower() const;
    Rps averageBeThroughput() const;
    double sloViolationFraction() const;
    double cappedFraction() const;
};

/** The shared-server runtime. */
class ColocatedServer
{
  public:
    /**
     * Single-secondary convenience constructor (the paper's setup).
     *
     * @param lc Ground-truth primary application (not owned).
     * @param be Ground-truth secondary, or nullptr for none (not
     *           owned).
     * @param power_cap Provisioned power capacity of the server.
     */
    ColocatedServer(const wl::LcApp& lc, const wl::BeApp* be,
                    Watts power_cap);

    /** Multi-secondary constructor (spatial sharing, Section V-G). */
    ColocatedServer(const wl::LcApp& lc,
                    std::vector<const wl::BeApp*> secondaries,
                    Watts power_cap);

    const wl::LcApp& lc() const { return *lc_; }
    const sim::ServerSpec& spec() const { return lc_->spec(); }
    Watts powerCap() const { return power_cap_; }

    /** Number of secondary slots (fixed at construction). */
    std::size_t secondaryCount() const { return secondaries_.size(); }

    /** First secondary (or nullptr) — the common single-BE view. */
    const wl::BeApp* be() const;
    /** Secondary application in slot @p i (may be nullptr). */
    const wl::BeApp* beAppAt(std::size_t i) const;

    /** Current offered load of the primary (requests/s). */
    Rps load() const { return load_; }
    const sim::Allocation& primaryAlloc() const { return primary_; }
    /** First secondary's allocation (empty default if no slots). */
    const sim::Allocation& beAlloc() const;
    const sim::Allocation& beAllocAt(std::size_t i) const;

    /**
     * Change the offered load at time @p now (integrates the elapsed
     * interval first). Load in requests/s, >= 0.
     */
    void setLoad(SimTime now, Rps load);

    /**
     * Install a new primary allocation. Secondaries' cores/ways are
     * clipped to the remaining spare if they would now overlap
     * (slot 0 is clipped last, i.e. has priority).
     */
    void setPrimaryAlloc(SimTime now, const sim::Allocation& alloc);

    /** Install slot 0's allocation (single-BE view). */
    void setBeAlloc(SimTime now, const sim::Allocation& alloc);

    /** Install slot @p i's allocation (must fit with all others). */
    void setBeAllocAt(SimTime now, std::size_t i,
                      const sim::Allocation& alloc);

    /**
     * Swap the application in slot @p i — a time-sharing job switch.
     * The slot's allocation is retained; pass nullptr to idle it.
     */
    void setBeApp(SimTime now, std::size_t i, const wl::BeApp* be);

    /** --- Observables (the app/telemetry instrumentation) --- */

    /** p99 latency of the primary at the current state (seconds). */
    double latencyP99() const;
    /** Tail-latency slack: 1 - p99/slo99. */
    double slack99() const;
    /** Current server power draw (watts). */
    Watts power() const;
    /** Total best-effort throughput across slots (units/s). */
    Rps beThroughput() const;
    /** Slot @p i's current throughput (units/s). */
    Rps beThroughputAt(std::size_t i) const;

    /** Windowed power meter (the socket meter the throttler reads). */
    const sim::PowerMeter& meter() const { return meter_; }

    /** Advance to @p now, integrating all accumulators. */
    void advanceTo(SimTime now);

    /** Statistics accumulated since construction (or resetStats). */
    const ServerStats& stats() const { return stats_; }

    /** Work done by slot @p i since the last resetStats. */
    double beWorkAt(std::size_t i) const;

    /** Restart accumulation (e.g. after a warm-up phase). */
    void resetStats(SimTime now);

  private:
    struct Secondary
    {
        const wl::BeApp* app = nullptr;
        sim::Allocation alloc;
        double workDone = 0.0;
    };

    void init(Watts power_cap);
    void integrate(SimTime now);
    void refreshMeter(SimTime now);
    /** Total cores/ways held by secondaries other than slot skip. */
    void otherUsage(std::size_t skip, int& cores, int& ways) const;

    const wl::LcApp* lc_;
    std::vector<Secondary> secondaries_;
    Watts power_cap_;

    Rps load_;
    sim::Allocation primary_;
    sim::Allocation empty_alloc_;

    sim::PowerMeter meter_;
    SimTime last_integrated_ = 0;
    ServerStats stats_;
};

} // namespace poco::server
