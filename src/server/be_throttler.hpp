/**
 * @file
 * Best-effort power throttler (Section IV-C "Secondary application").
 *
 * Every 100 ms the server manager reads the power meter and, when the
 * draw exceeds the provisioned capacity, throttles the best-effort
 * application: first by stepping its per-core frequency down (the
 * fine-grained knob), then by limiting its CPU execution time (duty
 * cycle) once the frequency floor is reached. When comfortably under
 * the cap it releases the throttle in the reverse order.
 */

#pragma once

#include "server/colocated_server.hpp"
#include "sim/allocation.hpp"
#include "util/units.hpp"

namespace poco::server
{

/** Which knob the throttler reaches for first (ablation study). */
enum class ThrottleOrder
{
    FreqThenDuty, ///< the paper's policy: DVFS first, duty second
    DutyThenFreq, ///< duty-cycle first, DVFS second
    FreqOnly,     ///< DVFS only; may fail to reach the cap
    DutyOnly,     ///< duty-cycle only
};

const char* throttleOrderName(ThrottleOrder order);

/** Throttler tuning. */
struct ThrottlerConfig
{
    /** Knob ordering; the paper uses frequency-then-duty. */
    ThrottleOrder order = ThrottleOrder::FreqThenDuty;

    /** Meter averaging window (paper: 100 ms sampling). */
    SimTime window = 100 * kMillisecond;
    /** Release hysteresis: unthrottle only below cap - margin. */
    Watts releaseMargin{3.0};
    /** Duty-cycle floor so the BE app keeps making some progress. */
    double minDutyCycle = 0.05;
    /** Multiplicative duty adjustment per period. */
    double dutyStep = 0.05;
};

/** Reactive power-cap enforcement for the secondary application. */
class BeThrottler
{
  public:
    explicit BeThrottler(ThrottlerConfig config = {});

    const ThrottlerConfig& config() const { return config_; }

    /**
     * One control step: read the meter's trailing-window average and
     * return the secondary allocation to install (same cores/ways,
     * adjusted frequency/duty). Operates on slot 0.
     *
     * @param now Current time (for the meter window query).
     */
    sim::Allocation decide(const ColocatedServer& server,
                           SimTime now) const;

    /**
     * Same decision for secondary slot @p slot — with spatial
     * sharing every co-runner is throttled in lockstep.
     */
    sim::Allocation decideAt(const ColocatedServer& server,
                             std::size_t slot, SimTime now) const;

    /**
     * The same decision against an externally supplied power reading
     * @p measured instead of the server's own meter — the seam the
     * fault injector feeds falsified readings through. A non-finite
     * reading satisfies neither comparison, so the throttler holds
     * its current allocation. decideAt(server, slot, now) is exactly
     * this overload fed the meter's trailing-window average.
     */
    sim::Allocation decideAt(const ColocatedServer& server,
                             std::size_t slot, SimTime now,
                             Watts measured) const;

  private:
    ThrottlerConfig config_;
};

} // namespace poco::server
