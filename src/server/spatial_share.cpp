#include "server/spatial_share.hpp"

#include <algorithm>

#include "model/demand.hpp"
#include "util/check.hpp"

namespace poco::server
{

namespace
{

/**
 * Best total throughput for two utilities on a fixed resource split,
 * sweeping the power split between them.
 */
double
bestTwoAppValue(const model::CobbDouglasUtility& a,
                const model::CobbDouglasUtility& b, int ca, int wa,
                int cb, int wb, Watts spare_power, double& thr_a,
                double& thr_b)
{
    thr_a = thr_b = 0.0;
    if ((ca < 1 || wa < 1) && (cb < 1 || wb < 1))
        return 0.0;
    if (ca < 1 || wa < 1) {
        thr_b = model::estimateBePerformance(b, spare_power, cb, wb);
        return thr_b;
    }
    if (cb < 1 || wb < 1) {
        thr_a = model::estimateBePerformance(a, spare_power, ca, wa);
        return thr_a;
    }

    // Unconstrained draw of each side at its full slice.
    const Watts draw_a =
        a.powerAt({static_cast<double>(ca),
                   static_cast<double>(wa)}) -
        a.pStatic();
    const Watts draw_b =
        b.powerAt({static_cast<double>(cb),
                   static_cast<double>(wb)}) -
        b.pStatic();
    if (draw_a + draw_b <= spare_power) {
        thr_a = a.performance({static_cast<double>(ca),
                               static_cast<double>(wa)});
        thr_b = b.performance({static_cast<double>(cb),
                               static_cast<double>(wb)});
        return thr_a + thr_b;
    }

    // Power is the binding constraint: sweep the split.
    double best = 0.0;
    for (double frac = 0.05; frac <= 0.951; frac += 0.05) {
        const Watts pa = frac * spare_power;
        const Watts pb = spare_power - pa;
        const double ta =
            model::estimateBePerformance(a, pa, ca, wa);
        const double tb =
            model::estimateBePerformance(b, pb, cb, wb);
        if (ta + tb > best) {
            best = ta + tb;
            thr_a = ta;
            thr_b = tb;
        }
    }
    return best;
}

} // namespace

SpatialPlan
planSpatialShare(
    const std::vector<const model::CobbDouglasUtility*>& utilities,
    int spare_cores, int spare_ways, Watts spare_power,
    const sim::ServerSpec& spec)
{
    POCO_REQUIRE(utilities.size() >= 2,
                 "spatial sharing needs at least two candidates");
    for (const auto* u : utilities)
        POCO_REQUIRE(u != nullptr && u->numResources() == 2,
                     "utilities must be (cores, ways) models");
    POCO_REQUIRE(spare_cores >= 0 && spare_ways >= 0,
                 "spare resources must be non-negative");
    POCO_REQUIRE(spare_power >= Watts{},
                 "spare power must be non-negative");

    SpatialPlan plan;
    plan.slices.assign(utilities.size(),
                       sim::Allocation{0, 0, spec.freqMax, 1.0});
    plan.estimatedThroughput.assign(utilities.size(), 0.0);

    if (utilities.size() == 2) {
        double best = -1.0;
        for (int ca = 0; ca <= spare_cores; ++ca) {
            for (int wa = 0; wa <= spare_ways; ++wa) {
                const int cb = spare_cores - ca;
                const int wb = spare_ways - wa;
                double ta = 0.0, tb = 0.0;
                const double total = bestTwoAppValue(
                    *utilities[0], *utilities[1], ca, wa, cb, wb,
                    spare_power, ta, tb);
                if (total > best) {
                    best = total;
                    plan.slices[0] = sim::Allocation{
                        ta > 0.0 ? ca : 0, ta > 0.0 ? wa : 0,
                        spec.freqMax, 1.0};
                    plan.slices[1] = sim::Allocation{
                        tb > 0.0 ? cb : 0, tb > 0.0 ? wb : 0,
                        spec.freqMax, 1.0};
                    plan.estimatedThroughput = {ta, tb};
                }
            }
        }
        plan.totalEstimatedThroughput = std::max(0.0, best);
        return plan;
    }

    // Three or more apps: peel the first app's slice greedily, then
    // recurse on the remainder. Not optimal in general but the
    // two-app case (the practical one) is exact.
    double best = -1.0;
    SpatialPlan best_plan = plan;
    for (int c0 = 0; c0 <= spare_cores; ++c0) {
        for (int w0 = 0; w0 <= spare_ways; ++w0) {
            for (double frac = 0.1; frac <= 0.91; frac += 0.2) {
                const Watts p0 = frac * spare_power;
                const double t0 =
                    (c0 >= 1 && w0 >= 1)
                        ? model::estimateBePerformance(
                              *utilities[0], p0, c0, w0)
                        : 0.0;
                const std::vector<const model::CobbDouglasUtility*>
                    rest(utilities.begin() + 1, utilities.end());
                const SpatialPlan sub = planSpatialShare(
                    rest, spare_cores - c0, spare_ways - w0,
                    spare_power - p0, spec);
                if (t0 + sub.totalEstimatedThroughput > best) {
                    best = t0 + sub.totalEstimatedThroughput;
                    best_plan.slices[0] = sim::Allocation{
                        t0 > 0.0 ? c0 : 0, t0 > 0.0 ? w0 : 0,
                        spec.freqMax, 1.0};
                    best_plan.estimatedThroughput[0] = t0;
                    for (std::size_t i = 0; i < sub.slices.size();
                         ++i) {
                        best_plan.slices[i + 1] = sub.slices[i];
                        best_plan.estimatedThroughput[i + 1] =
                            sub.estimatedThroughput[i];
                    }
                }
            }
        }
    }
    best_plan.totalEstimatedThroughput = std::max(0.0, best);
    return best_plan;
}

SpatialRunResult
runSpatialShare(const wl::LcApp& lc,
                const std::vector<const wl::BeApp*>& apps,
                const std::vector<sim::Allocation>& slices,
                Watts power_cap,
                std::unique_ptr<PrimaryController> controller,
                double load_fraction, SimTime duration,
                ServerManagerConfig config)
{
    POCO_REQUIRE(apps.size() == slices.size(),
                 "one slice per application required");
    POCO_REQUIRE(!apps.empty(), "need at least one application");
    POCO_REQUIRE(duration > config.warmup,
                 "duration must exceed the warm-up period");

    sim::EventQueue queue;
    ColocatedServer server(lc, apps, power_cap);
    ServerManager manager(server, std::move(controller),
                          wl::LoadTrace::constant(load_fraction),
                          config);
    manager.attach(queue);

    // Give the controller a moment to size the primary, then install
    // the slices (clipped installs would mask planning errors, so a
    // slice that no longer fits is an error).
    queue.runUntil(5 * kSecond);
    for (std::size_t i = 0; i < slices.size(); ++i)
        if (!slices[i].empty())
            server.setBeAllocAt(queue.now(), i, slices[i]);

    queue.runUntil(config.warmup);
    server.resetStats(queue.now());
    queue.runUntil(duration);
    server.advanceTo(queue.now());

    SpatialRunResult result;
    result.stats = server.stats();
    const double seconds = toSeconds(result.stats.elapsed);
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const double thr =
            seconds > 0.0 ? server.beWorkAt(i) / seconds : 0.0;
        result.throughput.push_back(thr);
        result.totalThroughput += thr;
    }
    return result;
}

} // namespace poco::server
