#include "server/primary_controller.hpp"

#include <algorithm>
#include <cmath>

#include "model/demand.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace poco::server
{

HeraclesController::HeraclesController(ControllerConfig config,
                                       std::uint64_t seed)
    : config_(config), rng_(seed)
{
    POCO_REQUIRE(config_.minSlack >= 0 &&
                 config_.minSlack < config_.highSlack,
                 "controller slack band must be ordered");
}

sim::Allocation
HeraclesController::decide(const ColocatedServer& server)
{
    const sim::ServerSpec& spec = server.spec();
    sim::Allocation alloc = server.primaryAlloc();
    const double slack = server.slack99();
    const Rps load = server.load();

    if (cooldown_ > 0)
        --cooldown_;

    // A material load shift invalidates the previous indifference
    // curve: draw a fresh random core count and let the way feedback
    // walk to a feasible point on the new curve. This realizes the
    // baseline's "any feasible allocation, undifferentiated by
    // power" behaviour.
    const Rps peak = server.lc().peakLoad();
    if (anchor_load_ < 0.0 ||
        std::abs(load.value() - anchor_load_) > 0.05 * peak.value()) {
        anchor_load_ = load.value();
        // Operator rule of thumb (model-free): at X% of peak load,
        // keep at least X% of the cores. The draw is uniform over a
        // band above that floor — the realistic stretch of the
        // indifference curve (granting, say, all 12 cores at 10%
        // load is feasible but not an operating point any deployment
        // would pick).
        const int min_cores = std::clamp(
            static_cast<int>(std::ceil(load / peak *
                                       static_cast<double>(spec.cores))),
            1, spec.cores);
        // Never hand the primary the last core unless the load floor
        // itself demands it: a zero-core spare would idle the co-runner
        // entirely.
        const int max_cores = std::max(min_cores,
            std::min(spec.cores - 1, min_cores + 6));
        alloc.cores = rng_.uniformInt(min_cores, max_cores);
        // Re-enter the curve from the safe side: grant all ways and
        // let the excess-slack path walk down to the iso-load curve.
        // (A real deployment would not gamble the primary's SLO on a
        // cold jump to a small allocation.)
        alloc.ways = spec.llcWays;
        cooldown_ = 0;
        return alloc;
    }

    if (slack < config_.minSlack) {
        // Latency pressure: grow ways aggressively — the deeper the
        // shortfall, the more units; once ways are exhausted, add
        // cores. An SLO violation triggers the maximum step.
        int units = 1 + static_cast<int>((config_.minSlack - slack) /
                                         0.04);
        units = std::clamp(units, 1, 5);
        if (slack < 0.0)
            units = 5;
        for (int u = 0; u < units; ++u) {
            if (alloc.ways < spec.llcWays)
                ++alloc.ways;
            else if (alloc.cores < spec.cores)
                ++alloc.cores;
        }
        cooldown_ = config_.shrinkCooldown;
    } else if (slack > config_.highSlack && cooldown_ == 0) {
        // Excess slack: walk back toward the curve one way at a time
        // — capacity is steeply sensitive to ways near small
        // allocations, so larger steps overshoot into violations.
        if (alloc.ways > 1)
            --alloc.ways;
        else if (alloc.cores > 1)
            --alloc.cores;
    }
    return alloc;
}

PomController::PomController(model::CobbDouglasUtility utility,
                             ControllerConfig config)
    : utility_(std::move(utility)), config_(config)
{
    POCO_REQUIRE(utility_.numResources() == 2,
                 "POM expects a (cores, ways) utility");
    POCO_REQUIRE(config_.minSlack >= 0 &&
                 config_.minSlack < config_.highSlack,
                 "controller slack band must be ordered");
}

sim::Allocation
PomController::decide(const ColocatedServer& server)
{
    const sim::ServerSpec& spec = server.spec();
    const double slack = server.slack99();
    const Rps load = server.load();
    const Rps peak = server.lc().peakLoad();

    // Latency feedback: a shortfall means the model is optimistic at
    // this operating point, so remember extra headroom. The boost is
    // sticky within a load regime — decaying it while the load is
    // unchanged would re-trigger the very shortfall that raised it
    // (an oscillation between violation and excess slack). It decays
    // partially when the load moves materially.
    if (anchor_load_ < 0.0 ||
        std::abs(load.value() - anchor_load_) > 0.05 * peak.value()) {
        anchor_load_ = load.value();
        feedback_boost_ = std::max(feedback_boost_ - 4, 0);
        // A load shift invalidates any frequency relaxation: snap
        // back to maximum before resizing.
        freq_ = spec.freqMax;
        high_slack_streak_ = 0;
    }
    // A shortfall raises the boost only when it is not self-
    // inflicted by a frequency relaxation — otherwise the DVFS and
    // demand loops chase each other (snap the frequency back first).
    const bool freq_relaxed =
        config_.tunePrimaryFrequency && freq_ > GHz{} &&
        freq_ < spec.freqMax - GHz{1e-9};
    if (slack < config_.minSlack && !freq_relaxed)
        feedback_boost_ = std::min(feedback_boost_ + 1, 16);

    // The model's performance unit is the guarded max load, so asking
    // for >= the offered load lands at ~minSlack by construction;
    // headroom and the feedback boost cover model error.
    const double target =
        std::max(server.load().value(), 1e-6) * config_.headroom *
        (1.0 + 0.02 * feedback_boost_);
    const auto plan =
        model::minPowerAllocationFor(utility_, target, spec);
    if (!plan) {
        // Even the full server is predicted short: give everything.
        POCO_DEBUG("pom", "load " << server.load()
                                  << " beyond modeled capacity");
        return sim::Allocation{spec.cores, spec.llcWays, spec.freqMax,
                               1.0};
    }

    sim::Allocation alloc = plan->alloc;
    // Immediate-term safety: never step below the current allocation
    // while slack is already short.
    if (slack < config_.minSlack) {
        alloc.cores = std::max(alloc.cores,
                               server.primaryAlloc().cores);
        alloc.ways = std::max(alloc.ways, server.primaryAlloc().ways);
        // And grow by one unit of the per-watt cheapest resource.
        const auto pref = utility_.indirectPreference();
        if (pref[0] >= pref[1] && alloc.cores < spec.cores)
            ++alloc.cores;
        else if (alloc.ways < spec.llcWays)
            ++alloc.ways;
        else if (alloc.cores < spec.cores)
            ++alloc.cores;
    }

    // Optional DVFS fine-tuning: convert *persistent* excess slack
    // into frequency savings (core power ~ f^2.4, capacity ~ f^0.5-
    // 0.9, so each step trades little slack for real watts). A
    // shortfall reverts to max frequency before any resource grows.
    if (config_.tunePrimaryFrequency) {
        if (freq_ <= GHz{})
            freq_ = spec.freqMax;
        if (slack < config_.minSlack) {
            freq_ = spec.freqMax;
            high_slack_streak_ = 0;
        } else if (slack >
                   config_.minSlack + config_.freqSlackMargin) {
            if (++high_slack_streak_ >= config_.freqStepPatience) {
                freq_ = spec.stepDown(freq_);
                high_slack_streak_ = 0;
            }
        } else {
            high_slack_streak_ = 0;
        }
        alloc.freq = freq_;
    }
    return alloc;
}

} // namespace poco::server
