/**
 * @file
 * Primary-application resource controllers (Section IV-C).
 *
 * Both controllers watch the primary's measured load and tail-latency
 * slack once per control period and adjust its (cores, ways)
 * allocation; the spare goes to the best-effort co-runner. They
 * differ in *which* point of the indifference curve they pick:
 *
 *  - HeraclesController (baseline, used by the Random policy):
 *    feedback-only and power-unaware. It grows when slack is low and
 *    shrinks when slack is high, alternating between resource types —
 *    any feasible point on the indifference curve is acceptable.
 *
 *  - PomController (Power Optimized Management): steers to the
 *    minimum-power allocation the fitted Cobb-Douglas model predicts
 *    for the current load (the expansion path of Fig. 5), then uses
 *    the same latency feedback to correct model error.
 */

#pragma once

#include <memory>
#include <string>

#include "model/cobb_douglas.hpp"
#include "util/rng.hpp"
#include "server/colocated_server.hpp"
#include "sim/allocation.hpp"

namespace poco::server
{

/** Shared controller tuning. */
struct ControllerConfig
{
    /** Grow when slack falls below this (paper: 10%). */
    double minSlack = 0.10;
    /** Shrink when slack rises above this (hysteresis deadband). */
    double highSlack = 0.28;
    /** Demand inflation when converting model output to allocations. */
    double headroom = 1.0;
    /** Control periods to wait after a grow before shrinking again. */
    int shrinkCooldown = 5;
    /**
     * Let POM fine-tune the primary's core frequency (Section IV-C:
     * feedback tunes "the allocations (including core frequency)").
     * When enabled, sustained excess slack steps the primary's DVFS
     * down one notch at a time; any slack shortfall snaps it back to
     * maximum before resources grow. Off by default: the fitted
     * model is frequency-blind, so this is a pure-feedback knob.
     */
    bool tunePrimaryFrequency = false;
    /** Consecutive high-slack periods required per down-step. */
    int freqStepPatience = 3;
    /** Slack above minSlack + this margin is "excess" for DVFS. */
    double freqSlackMargin = 0.12;
};

/** Interface: one decision per control period. */
class PrimaryController
{
  public:
    virtual ~PrimaryController() = default;

    virtual const std::string& name() const = 0;

    /**
     * Compute the next primary allocation from the current
     * observables. The caller installs the result.
     */
    virtual sim::Allocation decide(const ColocatedServer& server) = 0;
};

/**
 * Power-unaware latency-feedback controller (the baseline).
 *
 * Models the paper's Heracles-style baseline: it settles on "any one
 * of the feasible allocations in the indifference curve" without
 * differentiating resources by power. Concretely, whenever the
 * offered load shifts materially it draws a random core count and
 * then feedback-grows LLC ways (and, if exhausted, cores) until the
 * slack target is met; excess slack shrinks ways back. The emergent
 * steady state is a uniformly random point on the iso-load curve.
 */
class HeraclesController : public PrimaryController
{
  public:
    explicit HeraclesController(ControllerConfig config = {},
                                std::uint64_t seed = 7);

    const std::string& name() const override { return name_; }
    sim::Allocation decide(const ColocatedServer& server) override;

  private:
    std::string name_ = "heracles";
    ControllerConfig config_;
    Rng rng_;
    /** Load (rps) at the last random re-pick; <0 forces a re-pick. */
    double anchor_load_ = -1.0;
    /** Periods remaining before a shrink is allowed again. */
    int cooldown_ = 0;
};

/** Utility-guided power-optimized controller (POM). */
class PomController : public PrimaryController
{
  public:
    /**
     * @param utility Fitted indirect utility of the primary; its
     *        performance unit is the guarded max load (requests/s).
     */
    PomController(model::CobbDouglasUtility utility,
                  ControllerConfig config = {});

    const std::string& name() const override { return name_; }
    sim::Allocation decide(const ColocatedServer& server) override;

    const model::CobbDouglasUtility& utility() const
    {
        return utility_;
    }

  private:
    std::string name_ = "pom";
    model::CobbDouglasUtility utility_;
    ControllerConfig config_;
    /** Extra demand headroom (2% units) learned from shortfalls. */
    int feedback_boost_ = 0;
    /** Load at the last regime change; <0 before the first decide. */
    double anchor_load_ = -1.0;
    /** Current primary frequency (used when tunePrimaryFrequency). */
    GHz freq_{0.0};
    /** Consecutive high-slack periods seen (frequency tuning). */
    int high_slack_streak_ = 0;
};

} // namespace poco::server
