#include "server/server_manager.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "runtime/parallel.hpp"
#include "util/check.hpp"

namespace poco::server
{

ServerManager::ServerManager(
    ColocatedServer& server,
    std::unique_ptr<PrimaryController> controller,
    wl::LoadTrace trace, ServerManagerConfig config)
    : server_(&server), controller_(std::move(controller)),
      trace_(std::move(trace)), config_(config),
      throttler_(config.throttler)
{
    POCO_REQUIRE(controller_ != nullptr, "controller must be set");
    POCO_REQUIRE(config_.controlPeriod > 0 &&
                 config_.throttlePeriod > 0 &&
                 config_.telemetryPeriod > 0 && config_.loadPeriod > 0,
                 "manager periods must be positive");
}

void
ServerManager::setFaultInjector(fault::FaultInjector* injector)
{
    POCO_REQUIRE(queue_ == nullptr,
                 "wire the injector before attaching the manager");
    injector_ = injector;
}

void
ServerManager::attach(sim::EventQueue& queue)
{
    POCO_REQUIRE(queue_ == nullptr, "manager already attached");
    queue_ = &queue;
    const SimTime now = queue.now();
    // Apply the initial load immediately, then start the loops. The
    // offsets stagger same-period loops deterministically: load
    // first, control next, throttle and telemetry after.
    loadTick(now);
    queue.schedule(now + config_.controlPeriod,
                   [this](SimTime t) { controlTick(t); });
    queue.schedule(now + config_.throttlePeriod,
                   [this](SimTime t) { throttleTick(t); });
    queue.schedule(now + config_.telemetryPeriod,
                   [this](SimTime t) { telemetryTick(t); });
}

void
ServerManager::loadTick(SimTime now)
{
    double fraction = trace_.at(now);
    if (injector_ != nullptr)
        // Spikes stack multiplicatively but saturate at the app's
        // peak: the front-end load balancer cannot offer more.
        fraction = std::min(1.0,
                            fraction * injector_->loadFactor(now));
    server_->setLoad(now, fraction * server_->lc().peakLoad());
    queue_->schedule(now + config_.loadPeriod,
                     [this](SimTime t) { loadTick(t); });
}

void
ServerManager::controlTick(SimTime now)
{
    server_->advanceTo(now);
    const sim::Allocation next = controller_->decide(*server_);
    if (!(next == server_->primaryAlloc()))
        server_->setPrimaryAlloc(now, next);

    // With a single secondary, hand it the whole spare, preserving
    // its current throttle state (frequency and duty cycle). With
    // spatial sharing (2+ slots) the slices are placed explicitly by
    // the planner and only clipped by primary growth. While the
    // watchdog holds the server degraded the hand-off is frozen, so
    // a clamped or evicted secondary is not silently re-expanded.
    if (server_->secondaryCount() == 1 && server_->be() != nullptr &&
        !degraded_) {
        const sim::Allocation spare =
            sim::spareOf(server_->primaryAlloc(), server_->spec());
        sim::Allocation be = server_->beAlloc();
        const bool parked = be.empty();
        be.cores = spare.cores;
        be.ways = spare.ways;
        if (parked) {
            // After recovering from degraded mode, re-admit at the
            // conservative floor and let the throttler release it
            // step by step (hysteresis against flapping).
            be.freq = conservative_regrant_
                          ? server_->spec().freqMin
                          : server_->spec().freqMax;
            be.dutyCycle = conservative_regrant_
                               ? config_.throttler.minDutyCycle
                               : 1.0;
        }
        if (!(be == server_->beAlloc()))
            server_->setBeAlloc(now, be);
        conservative_regrant_ = false;
    } else if (server_->secondaryCount() == 1 &&
               server_->be() != nullptr &&
               !server_->beAlloc().empty()) {
        // Degraded: the secondary still follows the primary's
        // footprint (way power is frequency-independent, so holding
        // stale cores/ways would overshoot the cap when the primary
        // grows) but at the clamp floor. An evicted secondary stays
        // parked until recovery.
        const sim::Allocation spare =
            sim::spareOf(server_->primaryAlloc(), server_->spec());
        sim::Allocation be = server_->beAlloc();
        be.cores = spare.cores;
        be.ways = spare.ways;
        be.freq = server_->spec().freqMin;
        be.dutyCycle = config_.throttler.minDutyCycle;
        if (!(be == server_->beAlloc()))
            applyBeAlloc(now, 0, be);
    }

    // Slack bookkeeping for result().
    const double slack = server_->slack99();
    slack_sum_ += slack;
    ++slack_samples_;
    if (slack < config_.controller.minSlack)
        ++slack_shortfalls_;

    queue_->schedule(now + config_.controlPeriod,
                     [this](SimTime t) { controlTick(t); });
}

void
ServerManager::throttleTick(SimTime now)
{
    server_->advanceTo(now);
    const Watts measured = measuredPower(now);
    const bool hold =
        watchdogArmed() && watchdogTick(now, measured);
    if (!hold) {
        for (std::size_t slot = 0; slot < server_->secondaryCount();
             ++slot) {
            if (server_->beAppAt(slot) == nullptr ||
                server_->beAllocAt(slot).empty())
                continue;
            const sim::Allocation next =
                throttler_.decideAt(*server_, slot, now, measured);
            if (!(next == server_->beAllocAt(slot)))
                applyBeAlloc(now, slot, next);
        }
    }
    queue_->schedule(now + config_.throttlePeriod,
                     [this](SimTime t) { throttleTick(t); });
}

Watts
ServerManager::measuredPower(SimTime now)
{
    return injector_ != nullptr
               ? injector_->readPower(server_->meter(), now,
                                      config_.throttler.window)
               : server_->meter().average(now,
                                          config_.throttler.window);
}

void
ServerManager::applyBeAlloc(SimTime now, std::size_t slot,
                            const sim::Allocation& next)
{
    sim::Allocation landed = next;
    if (injector_ != nullptr)
        landed = injector_->apply(server_->beAllocAt(slot), next, now);
    if (!(landed == server_->beAllocAt(slot)))
        server_->setBeAllocAt(now, slot, landed);
    if (watchdogArmed() && slot == 0) {
        // Remember what was asked for so the next watchdog tick can
        // check that it actually landed and moved the meter.
        commanded_ = next;
        command_pending_ = true;
    }
}

bool
ServerManager::watchdogArmed() const
{
    return injector_ != nullptr && config_.watchdog.enabled &&
           server_->secondaryCount() == 1 &&
           server_->be() != nullptr;
}

bool
ServerManager::watchdogTick(SimTime now, Watts measured)
{
    const WatchdogConfig& wd = config_.watchdog;
    const Watts cap = server_->powerCap();
    const bool valid = std::isfinite(measured.value()) &&
                       measured >= Watts{} &&
                       measured <= cap * wd.maxCredibleFactor;

    bool bad = false;
    if (!valid) {
        ++fault_stats_.invalidReadings;
        bad = true;
    }

    // Confirm the previous tick's command: it must read back as
    // issued, and a valid reading must have moved in response (the
    // simulated server is piecewise constant, so any landed freq or
    // duty change shifts the trailing average).
    if (command_pending_) {
        command_pending_ = false;
        if (!(server_->beAlloc() == commanded_)) {
            ++fault_stats_.unconfirmedTicks;
            bad = true;
        } else if (valid && have_last_reading_ &&
                   measured == last_reading_) {
            ++fault_stats_.unconfirmedTicks;
            bad = true;
        }
    }

    // Evaluate an in-flight probe: if the deliberate step-down did
    // not move a valid reading either, the sensor is provably frozen
    // — conclusive on its own, no streak needed.
    bool probe_failed = false;
    if (probe_pending_) {
        probe_pending_ = false;
        if (valid && have_last_reading_ && measured == last_reading_) {
            bad = true;
            probe_failed = true;
        }
        // Restore only the throttle state: a control tick may have
        // resized the secondary since the probe was issued, and the
        // stale pre-probe cores/ways must not clobber that.
        sim::Allocation restore = server_->beAlloc();
        restore.freq = pre_probe_.freq;
        restore.dutyCycle = pre_probe_.dutyCycle;
        if (!(restore == server_->beAlloc()))
            applyBeAlloc(now, 0, restore);
        frozen_streak_ = 0;
    }

    // Track how long valid readings have been bit-identical while
    // the loop is otherwise quiet — the stuck-low blind spot.
    if (!bad && !degraded_ && valid && have_last_reading_ &&
        measured == last_reading_)
        ++frozen_streak_;
    else
        frozen_streak_ = 0;

    if (valid) {
        last_reading_ = measured;
        have_last_reading_ = true;
    }

    if (bad) {
        ++bad_streak_;
        sane_streak_ = 0;
    } else {
        sane_streak_ = std::min(sane_streak_ + 1, 1 << 20);
        bad_streak_ = 0;
    }
    if (probe_failed)
        bad_streak_ = std::max(bad_streak_,
                               config_.watchdog.faultTicksToDegrade);

    if (!degraded_) {
        if (bad_streak_ >= wd.faultTicksToDegrade) {
            degraded_ = true;
            ++fault_stats_.degradedEntries;
            overshoot_streak_ = 0;
            frozen_streak_ = 0;
        } else if (frozen_streak_ >= wd.frozenTicksToProbe &&
                   !command_pending_ && !server_->beAlloc().empty()) {
            // Step the secondary down one DVFS notch (or one duty
            // step at the frequency floor) and watch whether the
            // meter follows.
            pre_probe_ = server_->beAlloc();
            sim::Allocation step = pre_probe_;
            step.freq = server_->spec().stepDown(step.freq);
            if (step == pre_probe_ &&
                step.dutyCycle > config_.throttler.minDutyCycle)
                step.dutyCycle =
                    std::max(config_.throttler.minDutyCycle,
                             step.dutyCycle -
                                 config_.throttler.dutyStep);
            if (!(step == pre_probe_)) {
                ++fault_stats_.probes;
                applyBeAlloc(now, 0, step);
                probe_pending_ = true;
            }
            frozen_streak_ = 0;
        }
    }

    if (!degraded_)
        return probe_pending_;

    // --- Degraded: hold the secondary at the conservative floor ---
    ++fault_stats_.degradedTicks;
    sim::Allocation clamp = server_->beAlloc();
    if (!clamp.empty()) {
        clamp.freq = server_->spec().freqMin;
        clamp.dutyCycle = config_.throttler.minDutyCycle;
        if (!(server_->beAlloc() == clamp))
            applyBeAlloc(now, 0, clamp);
    }
    // Escalate to eviction when even the clamp does not land or a
    // valid reading keeps showing overshoot despite it.
    const bool clamp_unconfirmed =
        !clamp.empty() && !(server_->beAlloc() == clamp);
    const bool overshooting =
        valid && measured > cap + wd.overshootMargin;
    if (clamp_unconfirmed || overshooting)
        ++overshoot_streak_;
    else
        overshoot_streak_ = 0;
    if (overshoot_streak_ >= wd.overshootTicksToEvict &&
        !server_->beAlloc().empty()) {
        // Eviction is a job kill, not a DVFS write: it always lands.
        server_->setBeAlloc(now, sim::Allocation{
                                     0, 0, server_->spec().freqMax,
                                     1.0});
        command_pending_ = false;
        ++fault_stats_.evictions;
        overshoot_streak_ = 0;
    }
    if (sane_streak_ >= wd.saneTicksToRecover) {
        degraded_ = false;
        conservative_regrant_ = true;
    }
    return true;
}

void
ServerManager::telemetryTick(SimTime now)
{
    server_->advanceTo(now);
    sim::TelemetrySample sample;
    sample.when = now;
    sample.lcLoad = server_->load();
    sample.lcLatencyP95 =
        server_->lc().latencyP95(server_->load(),
                                 server_->primaryAlloc());
    sample.lcLatencyP99 = server_->latencyP99();
    sample.lcAlloc = server_->primaryAlloc();
    sample.beThroughput = server_->beThroughput();
    sample.beAlloc = server_->beAlloc();
    sample.power = server_->power();
    telemetry_.record(sample);
    queue_->schedule(now + config_.telemetryPeriod,
                     [this](SimTime t) { telemetryTick(t); });
}

ServerRunResult
ServerManager::result() const
{
    ServerRunResult out;
    out.stats = server_->stats();
    out.powerUtilization =
        out.stats.averagePower() / server_->powerCap();
    out.averageSlack =
        slack_samples_
            ? slack_sum_ / static_cast<double>(slack_samples_)
            : 0.0;
    out.slackShortfallFraction =
        slack_samples_ ? static_cast<double>(slack_shortfalls_) /
                             static_cast<double>(slack_samples_)
                       : 0.0;
    out.faults = fault_stats_;
    out.faults.capOvershootJoules = out.stats.capOvershootJoules;
    out.faults.maxOvershoot =
        std::max(Watts{}, out.stats.maxPower - server_->powerCap());
    return out;
}

void
ServerManager::resetStats(SimTime now)
{
    server_->resetStats(now);
    slack_sum_ = 0.0;
    slack_samples_ = 0;
    slack_shortfalls_ = 0;
    fault_stats_ = FaultRunStats{};
}

ServerRunResult
runServerScenario(const wl::LcApp& lc, const wl::BeApp* be,
                  Watts power_cap,
                  std::unique_ptr<PrimaryController> controller,
                  wl::LoadTrace trace, SimTime duration,
                  ServerManagerConfig config,
                  const fault::FaultPlan* faults)
{
    POCO_REQUIRE(duration > config.warmup,
                 "duration must exceed the warm-up period");
    sim::EventQueue queue;
    ColocatedServer server(lc, be, power_cap);
    ServerManager manager(server, std::move(controller),
                          std::move(trace), config);
    // The injector attaches first so its window-boundary events run
    // ahead of same-timestamp manager ticks (EventQueue breaks time
    // ties by schedule order).
    std::optional<fault::FaultInjector> injector;
    if (faults != nullptr && faults->enabled()) {
        injector.emplace(*faults);
        injector->attach(queue, &server.meter());
        manager.setFaultInjector(&*injector);
    }
    manager.attach(queue);
    queue.runUntil(config.warmup);
    manager.resetStats(queue.now());
    queue.runUntil(duration);
    server.advanceTo(queue.now());
    ServerRunResult result = manager.result();
    if (config.keepTelemetry) {
        const auto& samples = manager.telemetry().all();
        result.telemetry.assign(samples.begin(), samples.end());
    }
    return result;
}

std::vector<ServerRunResult>
runServerScenarios(std::vector<ServerScenario> scenarios,
                   runtime::ThreadPool* pool)
{
    for (const auto& s : scenarios) {
        POCO_REQUIRE(s.lc != nullptr, "scenario needs an LC app");
        POCO_REQUIRE(s.controller != nullptr,
                     "scenario needs a controller");
    }
    return runtime::parallelMap(
        pool, scenarios.size(), [&scenarios](std::size_t i) {
            ServerScenario& s = scenarios[i];
            return runServerScenario(*s.lc, s.be, s.powerCap,
                                     std::move(s.controller),
                                     std::move(s.trace), s.duration,
                                     s.config, s.faults);
        });
}

} // namespace poco::server
