#include "server/server_manager.hpp"

#include <utility>

#include "runtime/parallel.hpp"
#include "util/check.hpp"

namespace poco::server
{

ServerManager::ServerManager(
    ColocatedServer& server,
    std::unique_ptr<PrimaryController> controller,
    wl::LoadTrace trace, ServerManagerConfig config)
    : server_(&server), controller_(std::move(controller)),
      trace_(std::move(trace)), config_(config),
      throttler_(config.throttler)
{
    POCO_REQUIRE(controller_ != nullptr, "controller must be set");
    POCO_REQUIRE(config_.controlPeriod > 0 &&
                 config_.throttlePeriod > 0 &&
                 config_.telemetryPeriod > 0 && config_.loadPeriod > 0,
                 "manager periods must be positive");
}

void
ServerManager::attach(sim::EventQueue& queue)
{
    POCO_REQUIRE(queue_ == nullptr, "manager already attached");
    queue_ = &queue;
    const SimTime now = queue.now();
    // Apply the initial load immediately, then start the loops. The
    // offsets stagger same-period loops deterministically: load
    // first, control next, throttle and telemetry after.
    loadTick(now);
    queue.schedule(now + config_.controlPeriod,
                   [this](SimTime t) { controlTick(t); });
    queue.schedule(now + config_.throttlePeriod,
                   [this](SimTime t) { throttleTick(t); });
    queue.schedule(now + config_.telemetryPeriod,
                   [this](SimTime t) { telemetryTick(t); });
}

void
ServerManager::loadTick(SimTime now)
{
    server_->setLoad(now,
                     trace_.at(now) * server_->lc().peakLoad());
    queue_->schedule(now + config_.loadPeriod,
                     [this](SimTime t) { loadTick(t); });
}

void
ServerManager::controlTick(SimTime now)
{
    server_->advanceTo(now);
    const sim::Allocation next = controller_->decide(*server_);
    if (!(next == server_->primaryAlloc()))
        server_->setPrimaryAlloc(now, next);

    // With a single secondary, hand it the whole spare, preserving
    // its current throttle state (frequency and duty cycle). With
    // spatial sharing (2+ slots) the slices are placed explicitly by
    // the planner and only clipped by primary growth.
    if (server_->secondaryCount() == 1 && server_->be() != nullptr) {
        const sim::Allocation spare =
            sim::spareOf(server_->primaryAlloc(), server_->spec());
        sim::Allocation be = server_->beAlloc();
        const bool parked = be.empty();
        be.cores = spare.cores;
        be.ways = spare.ways;
        if (parked) {
            be.freq = server_->spec().freqMax;
            be.dutyCycle = 1.0;
        }
        if (!(be == server_->beAlloc()))
            server_->setBeAlloc(now, be);
    }

    // Slack bookkeeping for result().
    const double slack = server_->slack99();
    slack_sum_ += slack;
    ++slack_samples_;
    if (slack < config_.controller.minSlack)
        ++slack_shortfalls_;

    queue_->schedule(now + config_.controlPeriod,
                     [this](SimTime t) { controlTick(t); });
}

void
ServerManager::throttleTick(SimTime now)
{
    server_->advanceTo(now);
    for (std::size_t slot = 0; slot < server_->secondaryCount();
         ++slot) {
        if (server_->beAppAt(slot) == nullptr ||
            server_->beAllocAt(slot).empty())
            continue;
        const sim::Allocation next =
            throttler_.decideAt(*server_, slot, now);
        if (!(next == server_->beAllocAt(slot)))
            server_->setBeAllocAt(now, slot, next);
    }
    queue_->schedule(now + config_.throttlePeriod,
                     [this](SimTime t) { throttleTick(t); });
}

void
ServerManager::telemetryTick(SimTime now)
{
    server_->advanceTo(now);
    sim::TelemetrySample sample;
    sample.when = now;
    sample.lcLoad = server_->load();
    sample.lcLatencyP95 =
        server_->lc().latencyP95(server_->load(),
                                 server_->primaryAlloc());
    sample.lcLatencyP99 = server_->latencyP99();
    sample.lcAlloc = server_->primaryAlloc();
    sample.beThroughput = server_->beThroughput();
    sample.beAlloc = server_->beAlloc();
    sample.power = server_->power();
    telemetry_.record(sample);
    queue_->schedule(now + config_.telemetryPeriod,
                     [this](SimTime t) { telemetryTick(t); });
}

ServerRunResult
ServerManager::result() const
{
    ServerRunResult out;
    out.stats = server_->stats();
    out.powerUtilization =
        out.stats.averagePower() / server_->powerCap();
    out.averageSlack =
        slack_samples_
            ? slack_sum_ / static_cast<double>(slack_samples_)
            : 0.0;
    out.slackShortfallFraction =
        slack_samples_ ? static_cast<double>(slack_shortfalls_) /
                             static_cast<double>(slack_samples_)
                       : 0.0;
    return out;
}

void
ServerManager::resetStats(SimTime now)
{
    server_->resetStats(now);
    slack_sum_ = 0.0;
    slack_samples_ = 0;
    slack_shortfalls_ = 0;
}

ServerRunResult
runServerScenario(const wl::LcApp& lc, const wl::BeApp* be,
                  Watts power_cap,
                  std::unique_ptr<PrimaryController> controller,
                  wl::LoadTrace trace, SimTime duration,
                  ServerManagerConfig config)
{
    POCO_REQUIRE(duration > config.warmup,
                 "duration must exceed the warm-up period");
    sim::EventQueue queue;
    ColocatedServer server(lc, be, power_cap);
    ServerManager manager(server, std::move(controller),
                          std::move(trace), config);
    manager.attach(queue);
    queue.runUntil(config.warmup);
    manager.resetStats(queue.now());
    queue.runUntil(duration);
    server.advanceTo(queue.now());
    return manager.result();
}

std::vector<ServerRunResult>
runServerScenarios(std::vector<ServerScenario> scenarios,
                   runtime::ThreadPool* pool)
{
    for (const auto& s : scenarios) {
        POCO_REQUIRE(s.lc != nullptr, "scenario needs an LC app");
        POCO_REQUIRE(s.controller != nullptr,
                     "scenario needs a controller");
    }
    return runtime::parallelMap(
        pool, scenarios.size(), [&scenarios](std::size_t i) {
            ServerScenario& s = scenarios[i];
            return runServerScenario(*s.lc, s.be, s.powerCap,
                                     std::move(s.controller),
                                     std::move(s.trace), s.duration,
                                     s.config);
        });
}

} // namespace poco::server
