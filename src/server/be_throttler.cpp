#include "server/be_throttler.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace poco::server
{

const char*
throttleOrderName(ThrottleOrder order)
{
    switch (order) {
      case ThrottleOrder::FreqThenDuty: return "freq-then-duty";
      case ThrottleOrder::DutyThenFreq: return "duty-then-freq";
      case ThrottleOrder::FreqOnly:     return "freq-only";
      case ThrottleOrder::DutyOnly:     return "duty-only";
    }
    return "?";
}

BeThrottler::BeThrottler(ThrottlerConfig config) : config_(config)
{
    POCO_REQUIRE(config_.window > 0, "meter window must be positive");
    POCO_REQUIRE(config_.releaseMargin >= Watts{},
                 "release margin must be non-negative");
    POCO_REQUIRE(config_.minDutyCycle > 0.0 &&
                 config_.minDutyCycle <= 1.0,
                 "duty floor must be in (0, 1]");
    POCO_REQUIRE(config_.dutyStep > 0.0 && config_.dutyStep < 1.0,
                 "duty step must be in (0, 1)");
}

sim::Allocation
BeThrottler::decide(const ColocatedServer& server, SimTime now) const
{
    return decideAt(server, 0, now);
}

sim::Allocation
BeThrottler::decideAt(const ColocatedServer& server, std::size_t slot,
                      SimTime now) const
{
    return decideAt(server, slot, now,
                    server.meter().average(now, config_.window));
}

sim::Allocation
BeThrottler::decideAt(const ColocatedServer& server, std::size_t slot,
                      SimTime now, Watts measured) const
{
    (void)now;
    sim::Allocation alloc = server.beAllocAt(slot);
    if (alloc.empty())
        return alloc;

    const sim::ServerSpec& spec = server.spec();
    const Watts cap = server.powerCap();
    const Watts avg = measured;

    const bool can_lower_freq =
        alloc.freq > spec.freqMin + GHz{1e-9};
    const bool can_lower_duty =
        alloc.dutyCycle > config_.minDutyCycle;
    const bool can_raise_freq =
        alloc.freq < spec.freqMax - GHz{1e-9};
    const bool can_raise_duty = alloc.dutyCycle < 1.0;

    auto lower_freq = [&] { alloc.freq = spec.stepDown(alloc.freq); };
    auto lower_duty = [&] {
        alloc.dutyCycle = std::max(config_.minDutyCycle,
                                   alloc.dutyCycle -
                                       config_.dutyStep);
    };
    auto raise_freq = [&] { alloc.freq = spec.stepUp(alloc.freq); };
    auto raise_duty = [&] {
        alloc.dutyCycle =
            std::min(1.0, alloc.dutyCycle + config_.dutyStep);
    };

    if (avg > cap) {
        switch (config_.order) {
          case ThrottleOrder::FreqThenDuty:
            if (can_lower_freq)
                lower_freq();
            else if (can_lower_duty)
                lower_duty();
            break;
          case ThrottleOrder::DutyThenFreq:
            if (can_lower_duty)
                lower_duty();
            else if (can_lower_freq)
                lower_freq();
            break;
          case ThrottleOrder::FreqOnly:
            if (can_lower_freq)
                lower_freq();
            break;
          case ThrottleOrder::DutyOnly:
            if (can_lower_duty)
                lower_duty();
            break;
        }
    } else if (avg < cap - config_.releaseMargin) {
        // Release in the reverse order of throttling.
        switch (config_.order) {
          case ThrottleOrder::FreqThenDuty:
            if (can_raise_duty)
                raise_duty();
            else if (can_raise_freq)
                raise_freq();
            break;
          case ThrottleOrder::DutyThenFreq:
            if (can_raise_freq)
                raise_freq();
            else if (can_raise_duty)
                raise_duty();
            break;
          case ThrottleOrder::FreqOnly:
            if (can_raise_freq)
                raise_freq();
            break;
          case ThrottleOrder::DutyOnly:
            if (can_raise_duty)
                raise_duty();
            break;
        }
    }
    return alloc;
}

} // namespace poco::server
