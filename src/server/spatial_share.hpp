/**
 * @file
 * Spatial sharing of spare capacity between best-effort applications
 * (Section V-G: "Spatial sharing would entail further partitioning
 * of direct resources and power, which we intend to explore as
 * future work").
 *
 * The planner splits the spare cores, LLC ways, and power headroom
 * between two (or more) best-effort candidates using their fitted
 * indirect utilities: for every integer resource split it solves the
 * per-app boxed demand under a swept power split and keeps the
 * partition maximizing total estimated throughput. The runtime
 * validator executes a plan on a multi-secondary ColocatedServer.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "model/cobb_douglas.hpp"
#include "server/server_manager.hpp"
#include "sim/allocation.hpp"

namespace poco::server
{

/** A planned partition of the spare between BE applications. */
struct SpatialPlan
{
    /** Per-app resource slices (freq = max, duty = 1). */
    std::vector<sim::Allocation> slices;
    /** Per-app modeled throughput under the plan. */
    std::vector<double> estimatedThroughput;
    double totalEstimatedThroughput = 0.0;
};

/**
 * Plan the best spatial partition of the spare.
 *
 * @param utilities Fitted indirect utilities of the candidates (two
 *        or more; pointers must outlive the call).
 * @param spare_cores Spare cores after the primary's allocation.
 * @param spare_ways Spare LLC ways after the primary's allocation.
 * @param spare_power Power headroom under the provisioned capacity
 *        once the primary's draw is accounted for (watts).
 * @param spec Server platform (for frequency limits).
 *
 * Complexity: O(cores * ways * power-grid) for two apps; the
 * three-plus-app case recurses on the first split.
 */
SpatialPlan
planSpatialShare(
    const std::vector<const model::CobbDouglasUtility*>& utilities,
    int spare_cores, int spare_ways, Watts spare_power,
    const sim::ServerSpec& spec);

/** Outcome of executing a spatial plan on the simulated server. */
struct SpatialRunResult
{
    ServerStats stats;
    /** Realized per-app throughput (units/s). */
    std::vector<double> throughput;
    double totalThroughput = 0.0;
};

/**
 * Execute two-or-more best-effort apps spatially beside a primary at
 * a fixed load, using a POM-managed primary and the standard power
 * throttler on every secondary slot.
 *
 * @param slices Per-app resource slices (e.g. from a SpatialPlan).
 */
SpatialRunResult
runSpatialShare(const wl::LcApp& lc,
                const std::vector<const wl::BeApp*>& apps,
                const std::vector<sim::Allocation>& slices,
                Watts power_cap,
                std::unique_ptr<PrimaryController> controller,
                double load_fraction, SimTime duration,
                ServerManagerConfig config = {});

} // namespace poco::server
