#include "server/colocated_server.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace poco::server
{

Watts
ServerStats::averagePower() const
{
    return elapsed > 0 ? energyJoules / simSeconds(elapsed)
                       : Watts{};
}

Rps
ServerStats::averageBeThroughput() const
{
    return elapsed > 0 ? Rps{beWorkDone / toSeconds(elapsed)}
                       : Rps{};
}

double
ServerStats::sloViolationFraction() const
{
    return elapsed > 0
               ? static_cast<double>(sloViolationTime) /
                     static_cast<double>(elapsed)
               : 0.0;
}

double
ServerStats::cappedFraction() const
{
    return elapsed > 0
               ? static_cast<double>(cappedTime) /
                     static_cast<double>(elapsed)
               : 0.0;
}

ColocatedServer::ColocatedServer(const wl::LcApp& lc,
                                 const wl::BeApp* be, Watts power_cap)
    : lc_(&lc)
{
    if (be != nullptr)
        secondaries_.push_back(Secondary{be, {}, 0.0});
    init(power_cap);
}

ColocatedServer::ColocatedServer(
    const wl::LcApp& lc, std::vector<const wl::BeApp*> secondaries,
    Watts power_cap)
    : lc_(&lc)
{
    for (const wl::BeApp* be : secondaries)
        secondaries_.push_back(Secondary{be, {}, 0.0});
    init(power_cap);
}

void
ColocatedServer::init(Watts power_cap)
{
    POCO_REQUIRE(power_cap > Watts{}, "power cap must be positive");
    power_cap_ = power_cap;
    // Boot with the primary owning the whole machine and all
    // secondaries parked — the controllers carve out spare capacity.
    primary_ = lc_->fullAllocation();
    empty_alloc_ = sim::Allocation{0, 0, spec().freqMax, 1.0};
    for (auto& s : secondaries_)
        s.alloc = empty_alloc_;
    refreshMeter(0);
}

const wl::BeApp*
ColocatedServer::be() const
{
    return secondaries_.empty() ? nullptr : secondaries_.front().app;
}

const wl::BeApp*
ColocatedServer::beAppAt(std::size_t i) const
{
    POCO_REQUIRE(i < secondaries_.size(),
                 "secondary slot out of range");
    return secondaries_[i].app;
}

const sim::Allocation&
ColocatedServer::beAlloc() const
{
    return secondaries_.empty() ? empty_alloc_
                                : secondaries_.front().alloc;
}

const sim::Allocation&
ColocatedServer::beAllocAt(std::size_t i) const
{
    POCO_REQUIRE(i < secondaries_.size(),
                 "secondary slot out of range");
    return secondaries_[i].alloc;
}

void
ColocatedServer::setLoad(SimTime now, Rps load)
{
    POCO_REQUIRE(load >= Rps{}, "load must be non-negative");
    integrate(now);
    load_ = load;
    refreshMeter(now);
}

void
ColocatedServer::otherUsage(std::size_t skip, int& cores,
                            int& ways) const
{
    cores = 0;
    ways = 0;
    for (std::size_t i = 0; i < secondaries_.size(); ++i) {
        if (i == skip)
            continue;
        cores += secondaries_[i].alloc.cores;
        ways += secondaries_[i].alloc.ways;
    }
}

void
ColocatedServer::setPrimaryAlloc(SimTime now,
                                 const sim::Allocation& alloc)
{
    alloc.validate(spec());
    POCO_REQUIRE(alloc.cores >= 1 && alloc.ways >= 1,
                 "primary must retain at least one core and way");
    integrate(now);
    primary_ = alloc;
    // Clip secondaries into the new spare if the primary grew. Later
    // slots are clipped first so slot 0 keeps priority.
    int spare_cores = spec().cores - primary_.cores;
    int spare_ways = spec().llcWays - primary_.ways;
    for (std::size_t i = 0; i < secondaries_.size(); ++i) {
        auto& s = secondaries_[i];
        // Reserve what earlier (higher-priority) slots already hold.
        int reserved_cores = 0, reserved_ways = 0;
        for (std::size_t j = 0; j < i; ++j) {
            reserved_cores += secondaries_[j].alloc.cores;
            reserved_ways += secondaries_[j].alloc.ways;
        }
        s.alloc.cores = std::min(s.alloc.cores,
                                 std::max(0, spare_cores -
                                                 reserved_cores));
        s.alloc.ways = std::min(s.alloc.ways,
                                std::max(0, spare_ways -
                                                reserved_ways));
    }
    refreshMeter(now);
}

void
ColocatedServer::setBeAlloc(SimTime now, const sim::Allocation& alloc)
{
    setBeAllocAt(now, 0, alloc);
}

void
ColocatedServer::setBeAllocAt(SimTime now, std::size_t i,
                              const sim::Allocation& alloc)
{
    POCO_REQUIRE(i < secondaries_.size(),
                 "cannot allocate to an absent secondary");
    if (!alloc.empty()) {
        alloc.validate(spec());
        int other_cores = 0, other_ways = 0;
        otherUsage(i, other_cores, other_ways);
        POCO_REQUIRE(primary_.cores + other_cores + alloc.cores <=
                             spec().cores &&
                     primary_.ways + other_ways + alloc.ways <=
                             spec().llcWays,
                     "secondary allocation overlaps other tenants");
    }
    integrate(now);
    secondaries_[i].alloc = alloc;
    refreshMeter(now);
}

void
ColocatedServer::setBeApp(SimTime now, std::size_t i,
                          const wl::BeApp* be)
{
    POCO_REQUIRE(i < secondaries_.size(),
                 "secondary slot out of range");
    integrate(now);
    secondaries_[i].app = be;
    refreshMeter(now);
}

double
ColocatedServer::latencyP99() const
{
    return lc_->latencyP99(load_, primary_);
}

double
ColocatedServer::slack99() const
{
    return lc_->slack99(load_, primary_);
}

Watts
ColocatedServer::power() const
{
    Watts total = spec().idlePower + lc_->power(load_, primary_);
    for (const auto& s : secondaries_)
        if (s.app != nullptr && !s.alloc.empty())
            total += s.app->power(s.alloc);
    return total;
}

Rps
ColocatedServer::beThroughput() const
{
    Rps total;
    for (std::size_t i = 0; i < secondaries_.size(); ++i)
        total += beThroughputAt(i);
    return total;
}

Rps
ColocatedServer::beThroughputAt(std::size_t i) const
{
    POCO_REQUIRE(i < secondaries_.size(),
                 "secondary slot out of range");
    const auto& s = secondaries_[i];
    if (s.app == nullptr || s.alloc.empty())
        return Rps{};
    return s.app->throughput(s.alloc);
}

void
ColocatedServer::integrate(SimTime now)
{
    POCO_REQUIRE(now >= last_integrated_,
                 "server time must be monotone");
    const SimTime dt = now - last_integrated_;
    if (dt == 0)
        return;
    const Watts p = power();
    stats_.elapsed += dt;
    stats_.energyJoules += p * simSeconds(dt);
    bool throttled = false;
    for (std::size_t i = 0; i < secondaries_.size(); ++i) {
        const double work =
            beThroughputAt(i).value() * toSeconds(dt);
        secondaries_[i].workDone += work;
        stats_.beWorkDone += work;
        const auto& alloc = secondaries_[i].alloc;
        throttled = throttled ||
                    (secondaries_[i].app != nullptr &&
                     !alloc.empty() &&
                     (alloc.dutyCycle < 1.0 ||
                      alloc.freq < spec().freqMax - GHz{1e-9}));
    }
    if (latencyP99() > lc_->slo99())
        stats_.sloViolationTime += dt;
    if (throttled)
        stats_.cappedTime += dt;
    stats_.capOvershootJoules +=
        std::max(Watts{}, p - power_cap_) * simSeconds(dt);
    stats_.maxPower = std::max(stats_.maxPower, p);
    last_integrated_ = now;
}

double
ColocatedServer::beWorkAt(std::size_t i) const
{
    POCO_REQUIRE(i < secondaries_.size(),
                 "secondary slot out of range");
    return secondaries_[i].workDone;
}

void
ColocatedServer::refreshMeter(SimTime now)
{
    meter_.setPower(now, power());
}

void
ColocatedServer::advanceTo(SimTime now)
{
    integrate(now);
}

void
ColocatedServer::resetStats(SimTime now)
{
    integrate(now);
    stats_ = ServerStats{};
    for (auto& s : secondaries_)
        s.workDone = 0.0;
}

} // namespace poco::server
