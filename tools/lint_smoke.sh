# Lint the real tree: src/, tools/ and bench/ must be clean. This is
# the tier-lint gate CI runs; a violation fails the build with a
# file:line diagnostic from poco_lint.
#
# usage: lint_smoke.sh <poco_lint-binary> <repo-root>
set -u

lint="$1"
root="$2"

"$lint" "$root/src" "$root/tools" "$root/bench"
status=$?
if [ "$status" -ne 0 ]; then
    echo "FAIL: poco_lint found violations in the tree (exit $status)"
    exit 1
fi
echo "PASS: src/, tools/ and bench/ lint clean"
exit 0
