/**
 * @file
 * poco_lint — project-invariant linter for the Pocolo tree.
 *
 * A self-contained token/line scanner (no libclang): it walks the
 * given files/directories and enforces the repo's determinism and
 * input-hygiene contracts as named per-rule diagnostics. Comments and
 * string literals are stripped before matching, so rule names or
 * banned tokens inside strings (including this file's own tables)
 * never trigger.
 *
 * Rules (see DESIGN.md section 11):
 *   banned-random     std::rand / rand() / srand / random_device
 *                     outside util/rng.* — all randomness flows
 *                     through the seeded poco::Rng.
 *   banned-time       time(NULL) / std::chrono::system_clock /
 *                     gettimeofday outside util/rng.* — wall-clock
 *                     reads break replayable simulation.
 *                     (steady_clock is fine: it is a stopwatch.)
 *   unordered-iter    range-for over a std::unordered_map/set
 *                     variable — iteration order is unspecified and
 *                     has broken determinism before. Suppress a
 *                     reviewed site with
 *                     `// poco-lint: allow(unordered-iter)` on the
 *                     same or the immediately preceding line.
 *   unchecked-parse   atoi/atof/strtol/strtod/std::stoi/... outside
 *                     util/ — external input must funnel through the
 *                     POCO_CHECK-validating helpers in util/parse.hpp.
 *   pragma-once       every header carries #pragma once.
 *   no-float          float halves the mantissa silently; the power
 *                     books are kept in double (or Quantity<Tag>).
 *   deprecated-config cluster::EvaluatorConfig / cluster::SolverConfig
 *                     outside the shim header — new code takes
 *                     poco::FleetConfig (or cluster::SolverContext).
 *   nested-vector     std::vector<std::vector<double>> in src/math/
 *                     or src/cluster/ — solver-facing matrices are
 *                     flat row-major (math::MatrixView /
 *                     cluster::PerformanceMatrix); nested rows
 *                     scatter cache lines and defeat the vectorized
 *                     kernels. Suppress a reviewed compatibility shim
 *                     with `// poco-lint: allow(nested-vector)`.
 *   unbounded-queue   .push_back / .emplace_back in src/ctrl/ whose
 *                     receiver is never .reserve()d / .resize()d in
 *                     the file and has no .size() admission check
 *                     within the three preceding lines. The ctrl
 *                     layer is the always-on streaming path: a
 *                     container that grows per event without a
 *                     visible bound is how a control plane OOMs
 *                     under an event storm. Suppress a reviewed
 *                     bounded-by-construction site with
 *                     `// poco-lint: allow(unbounded-queue)`.
 *   no-using-namespace-std   namespace hygiene.
 *
 * Output: one `file:line: [rule] message` per violation, exit 1 if
 * any fired, exit 0 on a clean tree.
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

namespace
{

namespace fs = std::filesystem;

struct Violation
{
    std::string file;
    std::size_t line = 0;
    std::string rule;
    std::string message;
};

/** One file, split into raw lines and comment/string-stripped code. */
struct FileText
{
    std::string path;
    std::vector<std::string> raw;
    std::vector<std::string> code;
};

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 ||
           c == '_';
}

/**
 * Does @p code contain @p token with identifier boundaries on both
 * sides? Tokens may contain punctuation (e.g. "std::rand"); only the
 * outermost characters get the boundary check.
 */
bool
containsToken(const std::string& code, const std::string& token)
{
    std::size_t pos = 0;
    while ((pos = code.find(token, pos)) != std::string::npos) {
        const bool left_ok =
            pos == 0 || !isIdentChar(code[pos - 1]) ||
            !isIdentChar(token.front());
        const std::size_t end = pos + token.size();
        const bool right_ok = end >= code.size() ||
                              !isIdentChar(code[end]) ||
                              !isIdentChar(token.back());
        if (left_ok && right_ok)
            return true;
        ++pos;
    }
    return false;
}

/**
 * Strip //, block comments and string/char literals, preserving line
 * structure. @p in_block carries block-comment state across lines.
 */
std::string
stripLine(const std::string& line, bool& in_block)
{
    std::string out;
    out.reserve(line.size());
    std::size_t i = 0;
    while (i < line.size()) {
        if (in_block) {
            if (line.compare(i, 2, "*/") == 0) {
                in_block = false;
                i += 2;
            } else {
                ++i;
            }
            continue;
        }
        const char c = line[i];
        if (line.compare(i, 2, "//") == 0)
            break;
        if (line.compare(i, 2, "/*") == 0) {
            in_block = true;
            i += 2;
            continue;
        }
        if (c == '"' || c == '\'') {
            const char quote = c;
            ++i;
            while (i < line.size()) {
                if (line[i] == '\\') {
                    i += 2;
                    continue;
                }
                if (line[i] == quote) {
                    ++i;
                    break;
                }
                ++i;
            }
            out.push_back(quote); // keep a marker so tokens split
            continue;
        }
        out.push_back(c);
        ++i;
    }
    return out;
}

FileText
loadFile(const std::string& path)
{
    FileText text;
    text.path = path;
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "poco_lint: cannot read %s\n",
                     path.c_str());
        std::exit(2);
    }
    bool in_block = false;
    std::string line;
    while (std::getline(in, line)) {
        text.raw.push_back(line);
        text.code.push_back(stripLine(line, in_block));
    }
    return text;
}

/** Is rule @p rule suppressed on (or just above) line @p idx? */
bool
isSuppressed(const FileText& text, std::size_t idx,
             const std::string& rule)
{
    const std::string needle = "poco-lint: allow(" + rule + ")";
    if (text.raw[idx].find(needle) != std::string::npos)
        return true;
    return idx > 0 &&
           text.raw[idx - 1].find(needle) != std::string::npos;
}

/** Path-based exemptions, matched on generic (forward-slash) form. */
bool
pathContains(const std::string& path, const std::string& piece)
{
    std::string p = path;
    for (char& c : p)
        if (c == '\\')
            c = '/';
    return p.find(piece) != std::string::npos;
}

struct TokenRule
{
    std::string rule;
    std::vector<std::string> tokens;
    std::string message;
    /** Files whose path contains any of these are exempt. */
    std::vector<std::string> exempt;
    /** When non-empty, only files whose path contains one of these
     *  are checked (e.g. scope a layout rule to the solver dirs). */
    std::vector<std::string> only;
};

const std::vector<TokenRule>&
tokenRules()
{
    static const std::vector<TokenRule> rules = {
        {"banned-random",
         {"std::rand", "rand", "srand", "random_device"},
         "unseeded randomness; use poco::Rng (util/rng.hpp)",
         {"util/rng."}},
        {"banned-time",
         {"time", "std::time", "system_clock", "gettimeofday"},
         "wall-clock read breaks deterministic replay; use SimTime "
         "or steady_clock",
         {"util/rng."}},
        {"unchecked-parse",
         {"atoi", "atof", "atol", "atoll", "strtol", "strtoll",
          "strtoul", "strtoull", "strtod", "strtof", "stoi", "stol",
          "stoul", "stoull", "stod", "stof"},
         "raw parse of external input; use the POCO_CHECK-validating "
         "helpers in util/parse.hpp",
         {"util/parse."}},
        {"no-float",
         {"float"},
         "float halves the mantissa; keep physical quantities in "
         "double or Quantity<Tag>",
         {}},
        {"deprecated-config",
         {"EvaluatorConfig", "SolverConfig"},
         "deprecated config struct; use poco::FleetConfig "
         "(fleet/fleet_config.hpp) or cluster::SolverContext",
         {}},
        {"nested-vector",
         {"std::vector<std::vector<double>>"},
         "nested rows scatter cache lines; solver-facing matrices "
         "are flat row-major (math::MatrixView or "
         "cluster::PerformanceMatrix)",
         {},
         {"math/", "cluster/"}},
    };
    return rules;
}

/**
 * `rand` and `time` only count when called: require a `(` after the
 * token (skipping spaces). Keeps `steady_clock::time_point` or a
 * variable named `rand_state` out of the net.
 */
bool
isCallLike(const std::string& code, const std::string& token)
{
    std::size_t pos = 0;
    while ((pos = code.find(token, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !isIdentChar(code[pos - 1]);
        std::size_t end = pos + token.size();
        const bool right_ok =
            end >= code.size() || !isIdentChar(code[end]);
        if (left_ok && right_ok) {
            while (end < code.size() && code[end] == ' ')
                ++end;
            if (end < code.size() && code[end] == '(')
                return true;
        }
        ++pos;
    }
    return false;
}

/** Tokens that only fire in call position. */
bool
needsCallPosition(const std::string& token)
{
    static const std::set<std::string> call_only = {
        "rand",    "srand",   "time",    "std::time", "atoi",
        "atof",    "atol",    "atoll",   "strtol",    "strtoll",
        "strtoul", "strtoull", "strtod", "strtof",    "stoi",
        "stol",    "stoul",   "stoull",  "stod",      "stof"};
    return call_only.count(token) != 0;
}

void
runTokenRules(const FileText& text, std::vector<Violation>& out)
{
    for (const TokenRule& rule : tokenRules()) {
        bool exempt = false;
        for (const std::string& piece : rule.exempt)
            exempt = exempt || pathContains(text.path, piece);
        if (exempt)
            continue;
        if (!rule.only.empty()) {
            bool applies = false;
            for (const std::string& piece : rule.only)
                applies = applies || pathContains(text.path, piece);
            if (!applies)
                continue;
        }
        for (std::size_t i = 0; i < text.code.size(); ++i) {
            for (const std::string& token : rule.tokens) {
                const bool hit =
                    needsCallPosition(token)
                        ? isCallLike(text.code[i], token)
                        : containsToken(text.code[i], token);
                if (!hit || isSuppressed(text, i, rule.rule))
                    continue;
                out.push_back({text.path, i + 1, rule.rule,
                               token + ": " + rule.message});
                break; // one diagnostic per rule per line
            }
        }
    }
}

void
runUsingNamespaceStd(const FileText& text, std::vector<Violation>& out)
{
    for (std::size_t i = 0; i < text.code.size(); ++i) {
        const std::string& code = text.code[i];
        if (code.find("using") == std::string::npos ||
            code.find("namespace") == std::string::npos)
            continue;
        if (!containsToken(code, "std"))
            continue;
        // Tolerant of spacing: using <ws> namespace <ws> std
        const std::size_t u = code.find("using");
        const std::size_t n = code.find("namespace", u);
        const std::size_t s = code.find("std", n);
        if (u == std::string::npos || n == std::string::npos ||
            s == std::string::npos)
            continue;
        if (isSuppressed(text, i, "no-using-namespace-std"))
            continue;
        out.push_back(
            {text.path, i + 1, "no-using-namespace-std",
             "namespace pollution; spell out std:: qualifiers"});
    }
}

void
runPragmaOnce(const FileText& text, std::vector<Violation>& out)
{
    if (text.path.size() < 4 ||
        text.path.compare(text.path.size() - 4, 4, ".hpp") != 0)
        return;
    for (const std::string& code : text.code)
        if (code.find("#pragma once") != std::string::npos)
            return;
    out.push_back({text.path, 1, "pragma-once",
                   "header lacks #pragma once"});
}

/**
 * Collect the names of variables/members declared with an unordered
 * container type in this file. Handles nested template arguments by
 * skipping the balanced <...> after the container name.
 */
std::set<std::string>
unorderedNames(const FileText& text)
{
    std::set<std::string> names;
    for (const std::string& code : text.code) {
        for (const std::string& type :
             {std::string("unordered_map"),
              std::string("unordered_set")}) {
            std::size_t pos = code.find(type + "<");
            if (pos == std::string::npos)
                continue;
            std::size_t i = pos + type.size();
            int depth = 0;
            while (i < code.size()) {
                if (code[i] == '<')
                    ++depth;
                else if (code[i] == '>' && --depth == 0) {
                    ++i;
                    break;
                }
                ++i;
            }
            // Next identifier after the template args is the name.
            while (i < code.size() &&
                   !isIdentChar(code[i]) && code[i] != ';')
                ++i;
            std::string name;
            while (i < code.size() && isIdentChar(code[i]))
                name.push_back(code[i++]);
            if (!name.empty())
                names.insert(name);
        }
    }
    return names;
}

void
runUnorderedIter(const FileText& text, std::vector<Violation>& out)
{
    const std::set<std::string> names = unorderedNames(text);
    for (std::size_t i = 0; i < text.code.size(); ++i) {
        const std::string& code = text.code[i];
        const std::size_t for_pos = code.find("for");
        if (for_pos == std::string::npos ||
            !containsToken(code, "for"))
            continue;
        const std::size_t colon = code.find(" : ", for_pos);
        if (colon == std::string::npos)
            continue;
        // The range expression: everything after " : ".
        const std::string range = code.substr(colon + 3);
        bool hit = containsToken(range, "unordered_map") ||
                   containsToken(range, "unordered_set");
        for (const std::string& name : names)
            hit = hit || containsToken(range, name);
        if (!hit || isSuppressed(text, i, "unordered-iter"))
            continue;
        out.push_back(
            {text.path, i + 1, "unordered-iter",
             "range-for over an unordered container has unspecified "
             "order; sort first or annotate a reviewed site with "
             "poco-lint: allow(unordered-iter)"});
    }
}

/**
 * Is the container named @p receiver visibly bounded at line @p idx?
 * Either the file sizes it somewhere (a .reserve()/.resize() on the
 * same name — the ctrl idiom is to pre-size every per-event
 * container at construction), or an admission check reads
 * `receiver.size()` within the three lines above the growth site.
 */
bool
receiverIsBounded(const FileText& text, std::size_t idx,
                  const std::string& receiver)
{
    for (const std::string& code : text.code)
        if (code.find(receiver + ".reserve(") != std::string::npos ||
            code.find(receiver + ".resize(") != std::string::npos)
            return true;
    const std::size_t first = idx >= 3 ? idx - 3 : 0;
    for (std::size_t i = first; i <= idx; ++i)
        if (text.code[i].find(receiver + ".size()") !=
            std::string::npos)
            return true;
    return false;
}

void
runUnboundedQueue(const FileText& text, std::vector<Violation>& out)
{
    // Scoped to the streaming control plane: batch layers size
    // their working sets from the input, but ctrl/ containers live
    // for the whole event stream.
    if (!pathContains(text.path, "ctrl/"))
        return;
    for (std::size_t i = 0; i < text.code.size(); ++i) {
        const std::string& code = text.code[i];
        for (const std::string& grow :
             {std::string(".push_back("),
              std::string(".emplace_back(")}) {
            std::size_t pos = code.find(grow);
            bool flagged = false;
            while (pos != std::string::npos && !flagged) {
                // Receiver: the identifier ending at the dot (the
                // last path component of e.g. `roll.failovers`).
                std::size_t begin = pos;
                while (begin > 0 && isIdentChar(code[begin - 1]))
                    --begin;
                const std::string receiver =
                    code.substr(begin, pos - begin);
                if (!receiver.empty() &&
                    !receiverIsBounded(text, i, receiver) &&
                    !isSuppressed(text, i, "unbounded-queue")) {
                    out.push_back(
                        {text.path, i + 1, "unbounded-queue",
                         receiver + " grows per event with no "
                                    "reserve/resize or size() "
                                    "admission check; bound it or "
                                    "annotate a reviewed site with "
                                    "poco-lint: "
                                    "allow(unbounded-queue)"});
                    flagged = true; // one diagnostic per line
                }
                pos = code.find(grow, pos + 1);
            }
            if (flagged)
                break;
        }
    }
}

bool
lintableFile(const fs::path& path)
{
    const std::string ext = path.extension().string();
    return ext == ".cpp" || ext == ".hpp";
}

void
collect(const fs::path& root, std::vector<std::string>& files)
{
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
        if (lintableFile(root))
            files.push_back(root.string());
        return;
    }
    if (!fs::is_directory(root, ec)) {
        std::fprintf(stderr, "poco_lint: no such file or directory: "
                             "%s\n",
                     root.string().c_str());
        std::exit(2);
    }
    for (const auto& entry :
         fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && lintableFile(entry.path()))
            files.push_back(entry.path().string());
    }
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: poco_lint <file-or-dir>...\n"
                     "lints .cpp/.hpp files; exits 1 on violation\n");
        return 2;
    }
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i)
        collect(argv[i], files);
    std::sort(files.begin(), files.end());

    std::vector<Violation> violations;
    for (const std::string& path : files) {
        const FileText text = loadFile(path);
        runTokenRules(text, violations);
        runUsingNamespaceStd(text, violations);
        runPragmaOnce(text, violations);
        runUnorderedIter(text, violations);
        runUnboundedQueue(text, violations);
    }

    for (const Violation& v : violations)
        std::printf("%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                    v.rule.c_str(), v.message.c_str());
    std::fprintf(stderr, "poco_lint: %zu file(s), %zu violation(s)\n",
                 files.size(), violations.size());
    return violations.empty() ? 0 : 1;
}
