/**
 * @file
 * poco_lint — project-invariant linter for the Pocolo tree.
 *
 * A self-contained multi-pass analyzer (no libclang): it walks the
 * given files/directories and enforces the repo's determinism,
 * input-hygiene, and architecture contracts as named per-rule
 * diagnostics. Comments and string literals are stripped before
 * matching, so rule names or banned tokens inside strings (including
 * this file's own tables) never trigger.
 *
 * v2 architecture (see DESIGN.md section 16): files are scanned in
 * parallel (`--jobs N`, one worker per hardware thread by default);
 * per-file passes — the token rules plus the brace/statement-aware
 * `discarded-outcome` pass and the per-include `layering` pass —
 * write into a per-file result slot, then a serial graph stage runs
 * the cross-file `include-cycle` pass over the corpus. Every
 * diagnostic is finally sorted by (file, line, rule, message), so
 * output is byte-identical for any worker count. `--sarif FILE`
 * additionally emits the run as SARIF 2.1.0 for CI artifact upload.
 *
 * Rules (see DESIGN.md sections 11 and 16):
 *   banned-random     std::rand / rand() / srand / random_device
 *                     outside util/rng.* — all randomness flows
 *                     through the seeded poco::Rng.
 *   banned-time       time(NULL) / std::chrono::system_clock /
 *                     gettimeofday outside util/rng.* — wall-clock
 *                     reads break replayable simulation.
 *                     (steady_clock is fine: it is a stopwatch.)
 *   unordered-iter    range-for over a std::unordered_map/set
 *                     variable — iteration order is unspecified and
 *                     has broken determinism before. Suppress a
 *                     reviewed site with
 *                     `// poco-lint: allow(unordered-iter)` on the
 *                     same or the immediately preceding line.
 *   unchecked-parse   atoi/atof/strtol/strtod/std::stoi/... outside
 *                     util/ — external input must funnel through the
 *                     POCO_CHECK-validating helpers in util/parse.hpp.
 *   pragma-once       every header carries #pragma once.
 *   no-float          float halves the mantissa silently; the power
 *                     books are kept in double (or Quantity<Tag>).
 *   deprecated-config cluster::EvaluatorConfig / cluster::SolverConfig
 *                     outside the shim header — new code takes
 *                     poco::FleetConfig (or cluster::SolverContext).
 *   nested-vector     std::vector<std::vector<double>> in src/math/
 *                     or src/cluster/ — solver-facing matrices are
 *                     flat row-major (math::MatrixView /
 *                     cluster::PerformanceMatrix); nested rows
 *                     scatter cache lines and defeat the vectorized
 *                     kernels. Suppress a reviewed compatibility shim
 *                     with `// poco-lint: allow(nested-vector)`.
 *   unbounded-queue   .push_back / .emplace_back in src/ctrl/ whose
 *                     receiver is never .reserve()d / .resize()d in
 *                     the file and has no .size() admission check
 *                     within the three preceding lines. The ctrl
 *                     layer is the always-on streaming path: a
 *                     container that grows per event without a
 *                     visible bound is how a control plane OOMs
 *                     under an event storm. Suppress a reviewed
 *                     bounded-by-construction site with
 *                     `// poco-lint: allow(unbounded-queue)`.
 *   raw-mutex         std::mutex / lock_guard / unique_lock /
 *                     condition_variable in src/ outside
 *                     runtime/mutex.hpp — locking goes through the
 *                     capability-annotated runtime::Mutex wrappers so
 *                     the Clang thread-safety analysis sees it
 *                     (POCO_THREAD_SAFETY=ON CI job).
 *   layering          a cross-subsystem #include must point strictly
 *                     down the layer DAG (util at the bottom; scen
 *                     and fleet at the top — table in layerOf());
 *                     upward or same-layer includes couple
 *                     subsystems that must stay independent.
 *   include-cycle     the quoted-include graph of the scanned files
 *                     must be acyclic; each cycle is reported once,
 *                     anchored at its lexicographically smallest
 *                     file.
 *   discarded-outcome a statement-position call to the
 *                     Outcome/fingerprint family (fingerprint,
 *                     conservesBudget, placeWithFallback, replay,
 *                     resolve, runStreaming, ...) whose result falls
 *                     on the floor. Backed by [[nodiscard]] in the
 *                     headers; an intentional discard is written
 *                     `(void)call(...)`.
 *   no-using-namespace-std   namespace hygiene.
 *
 * Output: one `file:line: [rule] message` per violation, exit 1 if
 * any fired, exit 0 on a clean tree, exit 2 on usage/IO errors.
 */

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

namespace
{

namespace fs = std::filesystem;

struct Violation
{
    std::string file;
    std::size_t line = 0;
    std::string rule;
    std::string message;
};

bool
violationLess(const Violation& a, const Violation& b)
{
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
}

/** One quoted #include directive. */
struct Include
{
    std::size_t line = 0;  ///< 1-based
    std::string target;    ///< the string between the quotes
};

/** One file, split into raw lines and comment/string-stripped code. */
struct FileText
{
    std::string path;
    std::vector<std::string> raw;
    std::vector<std::string> code;
    std::vector<Include> includes; ///< quoted includes, in file order
};

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 ||
           c == '_';
}

/**
 * Does @p code contain @p token with identifier boundaries on both
 * sides? Tokens may contain punctuation (e.g. "std::rand"); only the
 * outermost characters get the boundary check.
 */
bool
containsToken(const std::string& code, const std::string& token)
{
    std::size_t pos = 0;
    while ((pos = code.find(token, pos)) != std::string::npos) {
        const bool left_ok =
            pos == 0 || !isIdentChar(code[pos - 1]) ||
            !isIdentChar(token.front());
        const std::size_t end = pos + token.size();
        const bool right_ok = end >= code.size() ||
                              !isIdentChar(code[end]) ||
                              !isIdentChar(token.back());
        if (left_ok && right_ok)
            return true;
        ++pos;
    }
    return false;
}

/**
 * Strip //, block comments and string/char literals, preserving line
 * structure. @p in_block carries block-comment state across lines.
 */
std::string
stripLine(const std::string& line, bool& in_block)
{
    std::string out;
    out.reserve(line.size());
    std::size_t i = 0;
    while (i < line.size()) {
        if (in_block) {
            if (line.compare(i, 2, "*/") == 0) {
                in_block = false;
                i += 2;
            } else {
                ++i;
            }
            continue;
        }
        const char c = line[i];
        if (line.compare(i, 2, "//") == 0)
            break;
        if (line.compare(i, 2, "/*") == 0) {
            in_block = true;
            i += 2;
            continue;
        }
        if (c == '"' || c == '\'') {
            const char quote = c;
            ++i;
            while (i < line.size()) {
                if (line[i] == '\\') {
                    i += 2;
                    continue;
                }
                if (line[i] == quote) {
                    ++i;
                    break;
                }
                ++i;
            }
            out.push_back(quote); // keep a marker so tokens split
            continue;
        }
        out.push_back(c);
        ++i;
    }
    return out;
}

/**
 * Parse a quoted include directive from a RAW line (the stripped
 * form has the target string blanked out). Angle-bracket includes
 * are system headers and never part of the project graph.
 */
bool
parseQuotedInclude(const std::string& raw, std::string& target)
{
    std::size_t i = 0;
    while (i < raw.size() &&
           std::isspace(static_cast<unsigned char>(raw[i])) != 0)
        ++i;
    if (i >= raw.size() || raw[i] != '#')
        return false;
    ++i;
    while (i < raw.size() &&
           std::isspace(static_cast<unsigned char>(raw[i])) != 0)
        ++i;
    if (raw.compare(i, 7, "include") != 0)
        return false;
    i += 7;
    while (i < raw.size() &&
           std::isspace(static_cast<unsigned char>(raw[i])) != 0)
        ++i;
    if (i >= raw.size() || raw[i] != '"')
        return false;
    const std::size_t close = raw.find('"', i + 1);
    if (close == std::string::npos)
        return false;
    target = raw.substr(i + 1, close - i - 1);
    return !target.empty();
}

/** @return false (with @p error set) instead of exiting: loads run
 *  on worker threads, and workers must never call std::exit. */
bool
loadFile(const std::string& path, FileText& text, std::string& error)
{
    text.path = path;
    std::ifstream in(path);
    if (!in) {
        error = "poco_lint: cannot read " + path;
        return false;
    }
    bool in_block = false;
    std::string line;
    while (std::getline(in, line)) {
        std::string target;
        if (parseQuotedInclude(line, target))
            text.includes.push_back({text.raw.size() + 1,
                                     std::move(target)});
        text.raw.push_back(line);
        text.code.push_back(stripLine(line, in_block));
    }
    return true;
}

/** Is the stripped code of line @p idx blank (comment/empty line)? */
bool
codeIsBlank(const FileText& text, std::size_t idx)
{
    for (const char c : text.code[idx])
        if (std::isspace(static_cast<unsigned char>(c)) == 0)
            return false;
    return true;
}

/**
 * Is rule @p rule suppressed on line @p idx? A same-line trailing
 * `// poco-lint: allow(rule)` always counts. A previous-line allow
 * only counts when that line is a standalone comment (its stripped
 * code is blank) — an allow trailing some unrelated statement must
 * not leak onto the next line.
 */
bool
isSuppressed(const FileText& text, std::size_t idx,
             const std::string& rule)
{
    const std::string needle = "poco-lint: allow(" + rule + ")";
    if (text.raw[idx].find(needle) != std::string::npos)
        return true;
    return idx > 0 && codeIsBlank(text, idx - 1) &&
           text.raw[idx - 1].find(needle) != std::string::npos;
}

/** Path-based exemptions, matched on generic (forward-slash) form. */
bool
pathContains(const std::string& path, const std::string& piece)
{
    std::string p = path;
    for (char& c : p)
        if (c == '\\')
            c = '/';
    return p.find(piece) != std::string::npos;
}

struct TokenRule
{
    std::string rule;
    std::vector<std::string> tokens;
    std::string message;
    /** Files whose path contains any of these are exempt. */
    std::vector<std::string> exempt;
    /** When non-empty, only files whose path contains one of these
     *  are checked (e.g. scope a layout rule to the solver dirs). */
    std::vector<std::string> only;
};

const std::vector<TokenRule>&
tokenRules()
{
    static const std::vector<TokenRule> rules = {
        {"banned-random",
         {"std::rand", "rand", "srand", "random_device"},
         "unseeded randomness; use poco::Rng (util/rng.hpp)",
         {"util/rng."},
         {}},
        {"banned-time",
         {"time", "std::time", "system_clock", "gettimeofday"},
         "wall-clock read breaks deterministic replay; use SimTime "
         "or steady_clock",
         {"util/rng."},
         {}},
        {"unchecked-parse",
         {"atoi", "atof", "atol", "atoll", "strtol", "strtoll",
          "strtoul", "strtoull", "strtod", "strtof", "stoi", "stol",
          "stoul", "stoull", "stod", "stof"},
         "raw parse of external input; use the POCO_CHECK-validating "
         "helpers in util/parse.hpp",
         {"util/parse."},
         {}},
        {"no-float",
         {"float"},
         "float halves the mantissa; keep physical quantities in "
         "double or Quantity<Tag>",
         {},
         {}},
        {"deprecated-config",
         {"EvaluatorConfig", "SolverConfig"},
         "deprecated config struct; use poco::FleetConfig "
         "(cluster/fleet_config.hpp) or cluster::SolverContext",
         {},
         {}},
        {"nested-vector",
         {"std::vector<std::vector<double>>"},
         "nested rows scatter cache lines; solver-facing matrices "
         "are flat row-major (math::MatrixView or "
         "cluster::PerformanceMatrix)",
         {},
         {"math/", "cluster/"}},
        {"raw-mutex",
         {"std::mutex", "std::lock_guard", "std::unique_lock",
          "std::condition_variable", "std::recursive_mutex",
          "std::shared_mutex", "std::scoped_lock"},
         "raw <mutex> primitive is invisible to the thread-safety "
         "analysis; use the capability-annotated runtime::Mutex / "
         "LockGuard / UniqueLock / CondVar (runtime/mutex.hpp)",
         {"runtime/mutex."},
         {"src/", "lint_fixtures"}},
    };
    return rules;
}

/**
 * `rand` and `time` only count when called: require a `(` after the
 * token (skipping spaces). Keeps `steady_clock::time_point` or a
 * variable named `rand_state` out of the net.
 */
bool
isCallLike(const std::string& code, const std::string& token)
{
    std::size_t pos = 0;
    while ((pos = code.find(token, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !isIdentChar(code[pos - 1]);
        std::size_t end = pos + token.size();
        const bool right_ok =
            end >= code.size() || !isIdentChar(code[end]);
        if (left_ok && right_ok) {
            while (end < code.size() && code[end] == ' ')
                ++end;
            if (end < code.size() && code[end] == '(')
                return true;
        }
        ++pos;
    }
    return false;
}

/** Tokens that only fire in call position. */
bool
needsCallPosition(const std::string& token)
{
    static const std::set<std::string> call_only = {
        "rand",    "srand",   "time",    "std::time", "atoi",
        "atof",    "atol",    "atoll",   "strtol",    "strtoll",
        "strtoul", "strtoull", "strtod", "strtof",    "stoi",
        "stol",    "stoul",   "stoull",  "stod",      "stof"};
    return call_only.count(token) != 0;
}

void
runTokenRules(const FileText& text, std::vector<Violation>& out)
{
    for (const TokenRule& rule : tokenRules()) {
        bool exempt = false;
        for (const std::string& piece : rule.exempt)
            exempt = exempt || pathContains(text.path, piece);
        if (exempt)
            continue;
        if (!rule.only.empty()) {
            bool applies = false;
            for (const std::string& piece : rule.only)
                applies = applies || pathContains(text.path, piece);
            if (!applies)
                continue;
        }
        for (std::size_t i = 0; i < text.code.size(); ++i) {
            for (const std::string& token : rule.tokens) {
                const bool hit =
                    needsCallPosition(token)
                        ? isCallLike(text.code[i], token)
                        : containsToken(text.code[i], token);
                if (!hit || isSuppressed(text, i, rule.rule))
                    continue;
                out.push_back({text.path, i + 1, rule.rule,
                               token + ": " + rule.message});
                break; // one diagnostic per rule per line
            }
        }
    }
}

void
runUsingNamespaceStd(const FileText& text, std::vector<Violation>& out)
{
    for (std::size_t i = 0; i < text.code.size(); ++i) {
        const std::string& code = text.code[i];
        if (code.find("using") == std::string::npos ||
            code.find("namespace") == std::string::npos)
            continue;
        if (!containsToken(code, "std"))
            continue;
        // Tolerant of spacing: using <ws> namespace <ws> std
        const std::size_t u = code.find("using");
        const std::size_t n = code.find("namespace", u);
        const std::size_t s = code.find("std", n);
        if (u == std::string::npos || n == std::string::npos ||
            s == std::string::npos)
            continue;
        if (isSuppressed(text, i, "no-using-namespace-std"))
            continue;
        out.push_back(
            {text.path, i + 1, "no-using-namespace-std",
             "namespace pollution; spell out std:: qualifiers"});
    }
}

void
runPragmaOnce(const FileText& text, std::vector<Violation>& out)
{
    if (text.path.size() < 4 ||
        text.path.compare(text.path.size() - 4, 4, ".hpp") != 0)
        return;
    for (const std::string& code : text.code)
        if (code.find("#pragma once") != std::string::npos)
            return;
    out.push_back({text.path, 1, "pragma-once",
                   "header lacks #pragma once"});
}

/**
 * Collect the names of variables/members declared with an unordered
 * container type in this file. Handles nested template arguments by
 * skipping the balanced <...> after the container name.
 */
std::set<std::string>
unorderedNames(const FileText& text)
{
    std::set<std::string> names;
    for (const std::string& code : text.code) {
        for (const std::string& type :
             {std::string("unordered_map"),
              std::string("unordered_set")}) {
            std::size_t pos = code.find(type + "<");
            if (pos == std::string::npos)
                continue;
            std::size_t i = pos + type.size();
            int depth = 0;
            while (i < code.size()) {
                if (code[i] == '<')
                    ++depth;
                else if (code[i] == '>' && --depth == 0) {
                    ++i;
                    break;
                }
                ++i;
            }
            // Next identifier after the template args is the name.
            while (i < code.size() &&
                   !isIdentChar(code[i]) && code[i] != ';')
                ++i;
            std::string name;
            while (i < code.size() && isIdentChar(code[i]))
                name.push_back(code[i++]);
            if (!name.empty())
                names.insert(name);
        }
    }
    return names;
}

void
runUnorderedIter(const FileText& text, std::vector<Violation>& out)
{
    const std::set<std::string> names = unorderedNames(text);
    for (std::size_t i = 0; i < text.code.size(); ++i) {
        const std::string& code = text.code[i];
        const std::size_t for_pos = code.find("for");
        if (for_pos == std::string::npos ||
            !containsToken(code, "for"))
            continue;
        const std::size_t colon = code.find(" : ", for_pos);
        if (colon == std::string::npos)
            continue;
        // The range expression: everything after " : ".
        const std::string range = code.substr(colon + 3);
        bool hit = containsToken(range, "unordered_map") ||
                   containsToken(range, "unordered_set");
        for (const std::string& name : names)
            hit = hit || containsToken(range, name);
        if (!hit || isSuppressed(text, i, "unordered-iter"))
            continue;
        out.push_back(
            {text.path, i + 1, "unordered-iter",
             "range-for over an unordered container has unspecified "
             "order; sort first or annotate a reviewed site with "
             "poco-lint: allow(unordered-iter)"});
    }
}

/**
 * Is the container named @p receiver visibly bounded at line @p idx?
 * Either the file sizes it somewhere (a .reserve()/.resize() on the
 * same name — the ctrl idiom is to pre-size every per-event
 * container at construction), or an admission check reads
 * `receiver.size()` within the three lines above the growth site.
 */
bool
receiverIsBounded(const FileText& text, std::size_t idx,
                  const std::string& receiver)
{
    for (const std::string& code : text.code)
        if (code.find(receiver + ".reserve(") != std::string::npos ||
            code.find(receiver + ".resize(") != std::string::npos)
            return true;
    const std::size_t first = idx >= 3 ? idx - 3 : 0;
    for (std::size_t i = first; i <= idx; ++i)
        if (text.code[i].find(receiver + ".size()") !=
            std::string::npos)
            return true;
    return false;
}

void
runUnboundedQueue(const FileText& text, std::vector<Violation>& out)
{
    // Scoped to the streaming control plane: batch layers size
    // their working sets from the input, but ctrl/ containers live
    // for the whole event stream.
    if (!pathContains(text.path, "ctrl/"))
        return;
    for (std::size_t i = 0; i < text.code.size(); ++i) {
        const std::string& code = text.code[i];
        for (const std::string& grow :
             {std::string(".push_back("),
              std::string(".emplace_back(")}) {
            std::size_t pos = code.find(grow);
            bool flagged = false;
            while (pos != std::string::npos && !flagged) {
                // Receiver: the identifier ending at the dot (the
                // last path component of e.g. `roll.failovers`).
                std::size_t begin = pos;
                while (begin > 0 && isIdentChar(code[begin - 1]))
                    --begin;
                const std::string receiver =
                    code.substr(begin, pos - begin);
                if (!receiver.empty() &&
                    !receiverIsBounded(text, i, receiver) &&
                    !isSuppressed(text, i, "unbounded-queue")) {
                    out.push_back(
                        {text.path, i + 1, "unbounded-queue",
                         receiver + " grows per event with no "
                                    "reserve/resize or size() "
                                    "admission check; bound it or "
                                    "annotate a reviewed site with "
                                    "poco-lint: "
                                    "allow(unbounded-queue)"});
                    flagged = true; // one diagnostic per line
                }
                pos = code.find(grow, pos + 1);
            }
            if (flagged)
                break;
        }
    }
}

/* ------------------------------------------------------------------
 * layering: the include DAG points strictly downward.
 * ------------------------------------------------------------------
 *
 * Layer map, derived from (and now enforcing) the actual dependency
 * structure of src/ — higher layers may include lower ones, never
 * sideways or up:
 *
 *   9  fleet
 *   8  scen
 *   7  ctrl
 *   6  cluster
 *   5  server
 *   4  model
 *   3  wl       fault
 *   2  math     sim
 *   1  runtime  tco
 *   0  util
 */

/** Layer of a known subsystem; -1 when the name is not a subsystem. */
int
layerOf(const std::string& subsystem)
{
    static const std::map<std::string, int> layers = {
        {"util", 0},  {"runtime", 1}, {"tco", 1},
        {"math", 2},  {"sim", 2},     {"wl", 3},
        {"fault", 3}, {"model", 4},   {"server", 5},
        {"cluster", 6}, {"ctrl", 7},  {"scen", 8},
        {"fleet", 9},
    };
    const auto it = layers.find(subsystem);
    return it == layers.end() ? -1 : it->second;
}

/**
 * Subsystem a FILE belongs to: the last path segment that names a
 * known subsystem ("src/cluster/placement.hpp" → cluster, and a lint
 * fixture under "lint_fixtures/sim/" → sim). Files outside every
 * subsystem (tools, tests, bench drivers) are unconstrained sources.
 */
std::string
fileSubsystem(const std::string& path)
{
    std::string p = path;
    for (char& c : p)
        if (c == '\\')
            c = '/';
    std::string found;
    std::size_t begin = 0;
    while (begin <= p.size()) {
        const std::size_t end = p.find('/', begin);
        if (end == std::string::npos)
            break;
        const std::string segment = p.substr(begin, end - begin);
        if (layerOf(segment) >= 0)
            found = segment;
        begin = end + 1;
    }
    return found;
}

/**
 * Subsystem an INCLUDE TARGET names: the first segment of the quoted
 * path ("cluster/fleet_config.hpp" → cluster). Targets without a
 * known subsystem prefix (local fixture includes, generated headers)
 * are unconstrained.
 */
std::string
includeSubsystem(const std::string& target)
{
    const std::size_t slash = target.find('/');
    if (slash == std::string::npos)
        return "";
    const std::string segment = target.substr(0, slash);
    return layerOf(segment) >= 0 ? segment : "";
}

void
runLayering(const FileText& text, std::vector<Violation>& out)
{
    const std::string from = fileSubsystem(text.path);
    if (from.empty())
        return; // tools/tests/bench may include anything
    const int from_layer = layerOf(from);
    for (const Include& inc : text.includes) {
        const std::string to = includeSubsystem(inc.target);
        if (to.empty() || to == from)
            continue;
        const int to_layer = layerOf(to);
        if (to_layer < from_layer)
            continue; // strictly downward: legal
        if (isSuppressed(text, inc.line - 1, "layering"))
            continue;
        const bool up = to_layer > from_layer;
        out.push_back(
            {text.path, inc.line, "layering",
             from + " (layer " + std::to_string(from_layer) +
                 ") -> " + inc.target + " (layer " +
                 std::to_string(to_layer) + ") " +
                 (up ? "climbs" : "crosses") +
                 " the subsystem DAG; includes must point strictly "
                 "down the layer order (util lowest, fleet highest)"});
    }
}

/* ------------------------------------------------------------------
 * include-cycle: the quoted-include graph over the scanned corpus
 * must be acyclic.
 * ------------------------------------------------------------------ */

/**
 * Resolve each file's quoted includes to indices into @p files by
 * path-suffix match: path P provides include string S when P == S or
 * P ends with "/" + S. Ambiguous matches resolve to the
 * lexicographically smallest path (deterministic), unresolved
 * includes (system or out-of-corpus headers) drop out of the graph.
 * @p files must be sorted.
 */
std::vector<std::vector<std::size_t>>
buildIncludeGraph(const std::vector<FileText>& files)
{
    std::vector<std::string> generic(files.size());
    for (std::size_t i = 0; i < files.size(); ++i) {
        generic[i] = files[i].path;
        for (char& c : generic[i])
            if (c == '\\')
                c = '/';
    }
    std::vector<std::vector<std::size_t>> adjacent(files.size());
    for (std::size_t i = 0; i < files.size(); ++i) {
        for (const Include& inc : files[i].includes) {
            const std::string suffix = "/" + inc.target;
            // First match wins: files is sorted, so the smallest
            // path provides the include.
            for (std::size_t j = 0; j < files.size(); ++j) {
                const std::string& p = generic[j];
                const bool matches =
                    p == inc.target ||
                    (p.size() > suffix.size() &&
                     p.compare(p.size() - suffix.size(),
                               suffix.size(), suffix) == 0);
                if (matches) {
                    adjacent[i].push_back(j);
                    break;
                }
            }
        }
    }
    return adjacent;
}

/**
 * Report every include cycle once. Iterative DFS in index (= sorted
 * path) order colors files white/grey/black; a grey→grey edge closes
 * a cycle, which is then rotated to start at its smallest member so
 * each distinct cycle has one canonical form. The diagnostic anchors
 * at that member's include line for the next file in the cycle.
 */
void
runIncludeCycles(const std::vector<FileText>& files,
                 std::vector<Violation>& out)
{
    const auto adjacent = buildIncludeGraph(files);
    enum class Color { White, Grey, Black };
    std::vector<Color> color(files.size(), Color::White);
    std::vector<std::size_t> stack;      // current DFS path
    std::set<std::vector<std::size_t>> seen; // canonical cycles

    struct Frame
    {
        std::size_t node;
        std::size_t edge = 0;
    };
    for (std::size_t root = 0; root < files.size(); ++root) {
        if (color[root] != Color::White)
            continue;
        std::vector<Frame> frames{{root}};
        color[root] = Color::Grey;
        stack.push_back(root);
        while (!frames.empty()) {
            Frame& top = frames.back();
            if (top.edge < adjacent[top.node].size()) {
                const std::size_t next =
                    adjacent[top.node][top.edge++];
                if (color[next] == Color::White) {
                    color[next] = Color::Grey;
                    stack.push_back(next);
                    frames.push_back({next});
                    continue;
                }
                if (color[next] != Color::Grey)
                    continue; // black: already fully explored
                // Grey: the stack from `next` onward is a cycle.
                auto begin = std::find(stack.begin(), stack.end(),
                                       next);
                std::vector<std::size_t> cycle(begin, stack.end());
                // Canonical form: rotate the smallest index first.
                const auto smallest =
                    std::min_element(cycle.begin(), cycle.end());
                std::rotate(cycle.begin(), smallest, cycle.end());
                if (!seen.insert(cycle).second)
                    continue;
                const FileText& anchor = files[cycle.front()];
                const std::string& to_path =
                    files[cycle.size() > 1 ? cycle[1]
                                           : cycle.front()]
                        .path;
                std::size_t line = 1;
                for (const Include& inc : anchor.includes)
                    if (pathContains(to_path, "/" + inc.target) ||
                        to_path == inc.target) {
                        line = inc.line;
                        break;
                    }
                std::string chain;
                for (const std::size_t n : cycle)
                    chain += files[n].path + " -> ";
                chain += anchor.path;
                out.push_back(
                    {anchor.path, line, "include-cycle",
                     "include cycle: " + chain +
                         "; break the loop with a forward "
                         "declaration or by moving the shared type "
                         "down a layer"});
                continue;
            }
            color[top.node] = Color::Black;
            stack.pop_back();
            frames.pop_back();
        }
    }
}

/* ------------------------------------------------------------------
 * discarded-outcome: statement-position calls whose result falls on
 * the floor.
 * ------------------------------------------------------------------ */

/**
 * The functions whose return value must never be silently ignored:
 * Outcome-returning solver entry points, the determinism
 * fingerprints, and the budget-conservation check. Mirrors the
 * [[nodiscard]] set in the headers; the lint pass catches the
 * discards GCC/Clang only warn about, and catches them in CI before
 * a -Werror build does.
 */
const std::set<std::string>&
outcomeFamily()
{
    static const std::set<std::string> family = {
        "fingerprint",        "conservesBudget",
        "placeWithFallback",  "placeBeRobust",
        "replay",             "resolve",
        "finish",             "runStreaming",
        "runStreamingWithFailover",
    };
    return family;
}

/** The file's stripped code flattened to one string, with a map from
 *  every character back to its 0-based source line. */
struct FlatCode
{
    std::string text;
    std::vector<std::size_t> line_of;
};

FlatCode
flatten(const FileText& file)
{
    FlatCode flat;
    std::size_t total = 0;
    for (const std::string& code : file.code)
        total += code.size() + 1;
    flat.text.reserve(total);
    flat.line_of.reserve(total);
    for (std::size_t i = 0; i < file.code.size(); ++i) {
        for (const char c : file.code[i]) {
            flat.text.push_back(c);
            flat.line_of.push_back(i);
        }
        flat.text.push_back('\n');
        flat.line_of.push_back(i);
    }
    return flat;
}

bool
isSpaceChar(char c)
{
    return std::isspace(static_cast<unsigned char>(c)) != 0;
}

/** Last index <= @p i of a non-whitespace char, or npos. */
std::size_t
skipSpaceBackward(const std::string& text, std::size_t i)
{
    while (i != std::string::npos && i < text.size() &&
           isSpaceChar(text[i]))
        i = i == 0 ? std::string::npos : i - 1;
    return i;
}

/**
 * Does a `(void)` cast end at index @p i (which points at ')')?
 * Accepts internal whitespace: `( void )`.
 */
bool
closesVoidCast(const std::string& text, std::size_t i)
{
    if (i == std::string::npos || text[i] != ')' || i == 0)
        return false;
    std::size_t j = skipSpaceBackward(text, i - 1);
    if (j == std::string::npos || j < 3)
        return false;
    if (text.compare(j - 3, 4, "void") != 0)
        return false;
    if (j >= 4 && isIdentChar(text[j - 4]))
        return false;
    j = j >= 4 ? skipSpaceBackward(text, j - 4) : std::string::npos;
    return j != std::string::npos && text[j] == '(';
}

/**
 * Scan backward from just before the called name across its receiver
 * chain (`a.b->c::`), then return the index of the first significant
 * character before the whole call expression, or npos at file start.
 * The chain only extends across explicit member/scope separators, so
 * a preceding type name or `return` keyword is NOT consumed — it
 * shows up as an identifier character in the result, which marks the
 * value as used.
 */
std::size_t
beforeReceiverChain(const std::string& text, std::size_t name_begin)
{
    std::size_t i = name_begin == 0 ? std::string::npos
                                    : name_begin - 1;
    for (;;) {
        i = skipSpaceBackward(text, i);
        if (i == std::string::npos)
            return i;
        // A separator extends the chain backward; anything else ends
        // the call expression.
        std::size_t after_sep = std::string::npos;
        if (text[i] == '.' && i > 0 &&
            std::isdigit(static_cast<unsigned char>(text[i - 1])) ==
                0)
            after_sep = i - 1;
        else if (text[i] == '>' && i > 0 && text[i - 1] == '-')
            after_sep = i >= 2 ? i - 2 : std::string::npos;
        else if (text[i] == ':' && i > 0 && text[i - 1] == ':')
            after_sep = i >= 2 ? i - 2 : std::string::npos;
        else
            return i;
        i = skipSpaceBackward(text, after_sep);
        if (i == std::string::npos)
            return i;
        // Consume one chain element: a balanced ()/[] suffix chain,
        // then the identifier it belongs to.
        while (i != std::string::npos &&
               (text[i] == ')' || text[i] == ']')) {
            const char close = text[i];
            const char open = close == ')' ? '(' : '[';
            int depth = 0;
            while (i != std::string::npos) {
                if (text[i] == close)
                    ++depth;
                else if (text[i] == open && --depth == 0) {
                    i = i == 0 ? std::string::npos : i - 1;
                    break;
                }
                i = i == 0 ? std::string::npos : i - 1;
            }
            i = skipSpaceBackward(text, i);
        }
        while (i != std::string::npos && isIdentChar(text[i]))
            i = i == 0 ? std::string::npos : i - 1;
    }
}

void
runDiscardedOutcome(const FileText& file, std::vector<Violation>& out)
{
    const FlatCode flat = flatten(file);
    const std::string& text = flat.text;
    for (const std::string& name : outcomeFamily()) {
        std::size_t pos = 0;
        while ((pos = text.find(name, pos)) != std::string::npos) {
            const std::size_t begin = pos;
            pos += name.size();
            // Identifier boundaries, then call position.
            if (begin > 0 && isIdentChar(text[begin - 1]))
                continue;
            std::size_t i = begin + name.size();
            if (i < text.size() && isIdentChar(text[i]))
                continue;
            while (i < text.size() && isSpaceChar(text[i]))
                ++i;
            if (i >= text.size() || text[i] != '(')
                continue;
            // Balanced argument list, then a statement-ending ';'.
            int depth = 0;
            while (i < text.size()) {
                if (text[i] == '(')
                    ++depth;
                else if (text[i] == ')' && --depth == 0) {
                    ++i;
                    break;
                }
                ++i;
            }
            while (i < text.size() && isSpaceChar(text[i]))
                ++i;
            if (i >= text.size() || text[i] != ';')
                continue;
            // Statement position: before the receiver chain there is
            // nothing that could consume the value.
            const std::size_t before =
                beforeReceiverChain(text, begin);
            bool discarded = false;
            if (before == std::string::npos)
                discarded = true; // call at start of file
            else if (text[before] == ';' || text[before] == '{' ||
                     text[before] == '}')
                // Note no ':' — a ternary's else-branch feeds the
                // conditional's value, and labels are rare enough to
                // leave to the [[nodiscard]] compiler warning.
                discarded = true;
            else if (text[before] == ')' &&
                     !closesVoidCast(text, before))
                discarded = true; // e.g. `if (cond) call();`
            if (!discarded)
                continue;
            const std::size_t line = flat.line_of[begin];
            if (isSuppressed(file, line, "discarded-outcome"))
                continue;
            out.push_back(
                {file.path, line + 1, "discarded-outcome",
                 name + "(...) result discarded; the return value "
                        "carries the Outcome/fingerprint contract — "
                        "consume it or cast an intentional discard "
                        "to (void)"});
        }
    }
}

/* ------------------------------------------------------------------
 * Driver: parallel per-file scan, serial graph pass, sorted merge.
 * ------------------------------------------------------------------ */

void
runFilePasses(const FileText& text, std::vector<Violation>& out)
{
    runTokenRules(text, out);
    runUsingNamespaceStd(text, out);
    runPragmaOnce(text, out);
    runUnorderedIter(text, out);
    runUnboundedQueue(text, out);
    runLayering(text, out);
    runDiscardedOutcome(text, out);
}

bool
lintableFile(const fs::path& path)
{
    const std::string ext = path.extension().string();
    return ext == ".cpp" || ext == ".hpp";
}

void
collect(const fs::path& root, std::vector<std::string>& files)
{
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
        if (lintableFile(root))
            files.push_back(root.string());
        return;
    }
    if (!fs::is_directory(root, ec)) {
        std::fprintf(stderr, "poco_lint: no such file or directory: "
                             "%s\n",
                     root.string().c_str());
        std::exit(2);
    }
    for (const auto& entry :
         fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && lintableFile(entry.path()))
            files.push_back(entry.path().string());
    }
}

/** JSON string escaping for the SARIF emitter. */
std::string
jsonEscape(const std::string& value)
{
    std::string out;
    out.reserve(value.size() + 8);
    for (const char c : value) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

/** Every rule id with a one-line description (SARIF rule table). */
const std::vector<std::pair<std::string, std::string>>&
ruleTable()
{
    static const std::vector<std::pair<std::string, std::string>>
        rules = {
            {"banned-random",
             "unseeded randomness outside util/rng"},
            {"banned-time",
             "wall-clock read breaks deterministic replay"},
            {"unchecked-parse",
             "raw parse of external input outside util/parse"},
            {"no-float",
             "float halves the mantissa; keep doubles"},
            {"deprecated-config",
             "removed config struct; use poco::FleetConfig"},
            {"nested-vector",
             "nested vectors defeat the flat row-major kernels"},
            {"raw-mutex",
             "raw <mutex> primitive bypasses the capability-"
             "annotated runtime wrappers"},
            {"no-using-namespace-std", "namespace hygiene"},
            {"pragma-once", "header lacks #pragma once"},
            {"unordered-iter",
             "iteration over unordered container is "
             "order-unspecified"},
            {"unbounded-queue",
             "ctrl-layer container grows per event without a bound"},
            {"layering",
             "include points up or sideways in the subsystem DAG"},
            {"include-cycle", "include graph contains a cycle"},
            {"discarded-outcome",
             "Outcome/fingerprint-family result discarded"},
        };
    return rules;
}

bool
writeSarif(const std::string& path,
           const std::vector<Violation>& violations)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << "{\n"
        << "  \"$schema\": "
           "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
        << "  \"version\": \"2.1.0\",\n"
        << "  \"runs\": [\n"
        << "    {\n"
        << "      \"tool\": {\n"
        << "        \"driver\": {\n"
        << "          \"name\": \"poco_lint\",\n"
        << "          \"rules\": [\n";
    const auto& rules = ruleTable();
    for (std::size_t i = 0; i < rules.size(); ++i)
        out << "            {\"id\": \""
            << jsonEscape(rules[i].first)
            << "\", \"shortDescription\": {\"text\": \""
            << jsonEscape(rules[i].second) << "\"}}"
            << (i + 1 < rules.size() ? "," : "") << "\n";
    out << "          ]\n"
        << "        }\n"
        << "      },\n"
        << "      \"results\": [\n";
    for (std::size_t i = 0; i < violations.size(); ++i) {
        const Violation& v = violations[i];
        out << "        {\"ruleId\": \"" << jsonEscape(v.rule)
            << "\", \"level\": \"error\", \"message\": {\"text\": \""
            << jsonEscape(v.message)
            << "\"}, \"locations\": [{\"physicalLocation\": "
               "{\"artifactLocation\": {\"uri\": \""
            << jsonEscape(v.file)
            << "\"}, \"region\": {\"startLine\": " << v.line
            << "}}}]}" << (i + 1 < violations.size() ? "," : "")
            << "\n";
    }
    out << "      ]\n"
        << "    }\n"
        << "  ]\n"
        << "}\n";
    return out.good();
}

/** Manual digit parse (the unchecked-parse rule bans the std ones —
 *  and argv is exactly the external input it exists for). */
bool
parseJobs(const std::string& arg, unsigned& jobs)
{
    if (arg.empty() || arg.size() > 4)
        return false;
    unsigned value = 0;
    for (const char c : arg) {
        if (std::isdigit(static_cast<unsigned char>(c)) == 0)
            return false;
        value = value * 10 + static_cast<unsigned>(c - '0');
    }
    if (value == 0)
        return false;
    jobs = value;
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    unsigned jobs = std::max(1u, std::thread::hardware_concurrency());
    std::string sarif_path;
    std::vector<std::string> files;
    bool usage_error = argc < 2;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc) {
            if (!parseJobs(argv[++i], jobs))
                usage_error = true;
        } else if (arg == "--sarif" && i + 1 < argc) {
            sarif_path = argv[++i];
        } else if (!arg.empty() && arg[0] == '-') {
            usage_error = true;
        } else {
            collect(arg, files);
        }
    }
    if (usage_error || files.empty()) {
        std::fprintf(
            stderr,
            "usage: poco_lint [--jobs N] [--sarif FILE] "
            "<file-or-dir>...\n"
            "lints .cpp/.hpp files; exits 1 on violation\n");
        return 2;
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()),
                files.end());

    // Parallel per-file stage: workers claim indices from an atomic
    // counter and write into their file's own slot — no locks, no
    // shared mutable state, and (after the final sort) output that
    // is byte-identical for any --jobs value.
    std::vector<FileText> texts(files.size());
    std::vector<std::vector<Violation>> slots(files.size());
    std::vector<std::string> errors(files.size());
    std::atomic<std::size_t> next{0};
    const unsigned workers = std::min<unsigned>(
        jobs, static_cast<unsigned>(files.size()));
    auto scan = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= files.size())
                return;
            if (!loadFile(files[i], texts[i], errors[i]))
                continue; // reported after join; no exit here
            runFilePasses(texts[i], slots[i]);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers > 0 ? workers - 1 : 0);
    for (unsigned t = 1; t < workers; ++t)
        pool.emplace_back(scan);
    scan();
    for (std::thread& worker : pool)
        worker.join();
    bool load_failed = false;
    for (const std::string& error : errors)
        if (!error.empty()) {
            std::fprintf(stderr, "%s\n", error.c_str());
            load_failed = true;
        }
    if (load_failed)
        return 2;

    // Serial cross-file stage over the loaded corpus.
    std::vector<Violation> violations;
    for (std::vector<Violation>& slot : slots)
        violations.insert(violations.end(),
                          std::make_move_iterator(slot.begin()),
                          std::make_move_iterator(slot.end()));
    runIncludeCycles(texts, violations);
    std::sort(violations.begin(), violations.end(), violationLess);

    for (const Violation& v : violations)
        std::printf("%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                    v.rule.c_str(), v.message.c_str());
    std::fprintf(stderr, "poco_lint: %zu file(s), %zu violation(s)\n",
                 files.size(), violations.size());
    if (!sarif_path.empty() &&
        !writeSarif(sarif_path, violations)) {
        std::fprintf(stderr, "poco_lint: cannot write SARIF to %s\n",
                     sarif_path.c_str());
        return 2;
    }
    return violations.empty() ? 0 : 1;
}
