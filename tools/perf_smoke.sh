#!/usr/bin/env bash
# Perf smoke: run the solver-scaling benchmark and the parallel-solver
# unit tests against an existing build tree. The scaling benchmark
# cross-checks the pooled LP against the serial LP (and the memo cache
# against both) and exits non-zero on any disagreement, so a passing
# run certifies the parallel solver's determinism contract on this
# host, not just its wall-clock.
#
# Usage: tools/perf_smoke.sh [build-dir]   (default: build)

set -u

build_dir="${1:-build}"

fail() {
    echo "perf_smoke: FAILED: $*" >&2
    exit 1
}

[ -d "${build_dir}" ] || fail "build dir '${build_dir}' not found (run cmake/cmake --build first)"

scaling="${build_dir}/bench/bench_ext_scaling"
[ -x "${scaling}" ] || fail "missing ${scaling} (build the bench targets)"

echo "perf_smoke: running ${scaling}"
if ! "${scaling}"; then
    fail "bench_ext_scaling exited non-zero: parallel solver disagrees with serial (or the memo cache is corrupt)"
fi

solver_tests="${build_dir}/tests/test_math_solver_parallel"
if [ -x "${solver_tests}" ]; then
    echo "perf_smoke: running ${solver_tests}"
    "${solver_tests}" --gtest_brief=1 ||
        fail "test_math_solver_parallel reported failures"
else
    echo "perf_smoke: ${solver_tests} not built, skipping unit tests"
fi

echo "perf_smoke: OK"
