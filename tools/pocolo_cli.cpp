/**
 * @file
 * pocolo_cli — command-line driver for the Pocolo library.
 *
 * Subcommands:
 *   spec                         print the server platform (Table I)
 *   apps                         list the calibrated applications
 *   profile <lc|be> <name>       dump profile samples as CSV
 *   fit <lc|be> <name>           fit and print the utility model
 *   curve <lc-name> <load%>      indifference curve at a load
 *   matrix                       model-driven performance matrix
 *   place [lp|hungarian|exhaustive|random|greedy]
 *                                placement under a solver
 *   policies                     run Random/POM/POColo end to end
 *   tco                          amortized monthly TCO comparison
 *   scen [clusters] [regions]    generate a seeded fleet scenario
 *                                and print its summary + fingerprint
 *
 * Output is plain text (aligned tables) on stdout; `profile` emits
 * CSV so it can feed external plotting.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_evaluator.hpp"
#include "model/fitter.hpp"
#include "model/indifference.hpp"
#include "model/model_store.hpp"
#include "model/profiler.hpp"
#include "runtime/thread_pool.hpp"
#include "scen/scenario.hpp"
#include "server/server_manager.hpp"
#include "tco/tco_model.hpp"
#include "util/check.hpp"
#include "util/parse.hpp"
#include "util/table.hpp"
#include "wl/registry.hpp"

using namespace poco;

namespace
{

/** Global options parsed before the subcommand. */
struct Options
{
    /** 1 = serial, 0 = hardware concurrency, N = N workers. */
    int threads = 0;
    /** Seed salt for every stochastic stream. */
    std::uint64_t seed = 0;

    /** Worker count after resolving 0 to the hardware. */
    unsigned
    effectiveThreads() const
    {
        return threads == 0
                   ? runtime::ThreadPool::hardwareThreads()
                   : static_cast<unsigned>(threads);
    }

    FleetConfig
    fleetConfig() const
    {
        return FleetConfig{}
            .withThreads(threads)
            .withSeed(seed);
    }

    model::ProfilerConfig
    profilerConfig() const
    {
        model::ProfilerConfig config;
        // Same salt mixing as ClusterEvaluator, so standalone
        // profile/fit output matches the evaluator's models.
        config.seed ^= seed * 0x9e3779b97f4a7c15ULL;
        return config;
    }
};

/**
 * The pool standalone (non-evaluator) commands run on: null when
 * serial was requested, the shared pool for the hardware default,
 * or a dedicated pool for an explicit width.
 */
struct CliPool
{
    explicit CliPool(const Options& options)
    {
        if (options.threads == 1)
            return;
        if (options.threads <= 0) {
            pool = &runtime::ThreadPool::global();
            return;
        }
        owned = std::make_unique<runtime::ThreadPool>(
            static_cast<unsigned>(options.threads));
        pool = owned.get();
    }

    std::unique_ptr<runtime::ThreadPool> owned;
    runtime::ThreadPool* pool = nullptr;
};

int
usage()
{
    std::printf(
        "usage: pocolo_cli [--threads N] [--seed S] <command> [args]\n"
        "\n"
        "global options:\n"
        "  --threads N   worker threads (1 = serial; default:\n"
        "                hardware concurrency); results are\n"
        "                bit-identical for every value\n"
        "  --seed S      salt for every stochastic stream\n"
        "\n"
        "commands:\n"
        "  spec                       server platform (Table I)\n"
        "  apps                       calibrated applications\n"
        "  profile <lc|be> <name>     profile samples as CSV\n"
        "  fit <lc|be> <name>         fitted Cobb-Douglas model\n"
        "  curve <lc-name> <load%%>    indifference curve\n"
        "  matrix                     performance matrix\n"
        "  place [solver]             placement (lp, hungarian,\n"
        "                             exhaustive, random, greedy)\n"
        "  policies                   Random/POM/POColo comparison\n"
        "  tco                        monthly TCO comparison\n"
        "  fit-all <file>             fit all apps, save the model\n"
        "                             store (historical knowledge)\n"
        "  models <file>              list a saved model store\n"
        "  simulate <lc> <be> <load%%|trace.csv> <minutes>\n"
        "                             run a managed colocation and\n"
        "                             print telemetry as CSV\n"
        "  scen [clusters] [regions]  generate a seeded fleet\n"
        "                             scenario; summary + fingerprint\n");
    return 2;
}

int
cmdSpec()
{
    const sim::ServerSpec spec = sim::xeonE5_2650();
    TextTable t({"property", "value"});
    t.addRow({"name", spec.name});
    t.addRow({"cores", std::to_string(spec.cores)});
    t.addRow({"llc ways", std::to_string(spec.llcWays)});
    t.addRow({"llc size (MB)", fmt(spec.llcMegabytes, 0)});
    t.addRow({"freq range (GHz)",
              fmt(spec.freqMin.value(), 1) + " - " +
                  fmt(spec.freqMax.value(), 1)});
    t.addRow({"idle power (W)", fmt(spec.idlePower.value(), 0)});
    t.addRow({"nominal active power (W)",
              fmt(spec.nominalActivePower.value(), 0)});
    std::printf("%s", t.render().c_str());
    return 0;
}

int
cmdApps(const wl::AppSet& apps)
{
    TextTable t({"class", "name", "peak load", "p99 SLO (s)",
                 "provisioned power (W)"});
    for (const auto& lc : apps.lc)
        t.addRow({"LC", lc.name(), fmt(lc.peakLoad().value(), 0),
                  fmt(lc.slo99(), 4),
                  fmt(lc.provisionedPower().value(), 1)});
    for (const auto& be : apps.be)
        t.addRow({"BE", be.name(), "-", "-", "-"});
    std::printf("%s", t.render().c_str());
    return 0;
}

int
cmdProfile(const wl::AppSet& apps, const Options& options,
           const std::string& cls, const std::string& name)
{
    const model::Profiler profiler(options.profilerConfig());
    CliPool cli_pool(options);
    std::vector<model::ProfileSample> samples;
    if (cls == "lc")
        samples = profiler.profileLc(apps.lcByName(name),
                                     cli_pool.pool);
    else if (cls == "be")
        samples = profiler.profileBe(apps.beByName(name),
                                     cli_pool.pool);
    else
        return usage();
    std::printf("cores,ways,perf,power_w\n");
    for (const auto& s : samples)
        std::printf("%.0f,%.0f,%.6g,%.4f\n", s.r[0], s.r[1], s.perf,
                    s.power);
    return 0;
}

int
cmdFit(const wl::AppSet& apps, const Options& options,
       const std::string& cls, const std::string& name)
{
    const model::Profiler profiler(options.profilerConfig());
    CliPool cli_pool(options);
    const model::UtilityFitter fitter;
    model::CobbDouglasUtility m;
    if (cls == "lc")
        m = fitter.fit(profiler.profileLc(apps.lcByName(name),
                                          cli_pool.pool));
    else if (cls == "be")
        m = fitter.fit(profiler.profileBe(apps.beByName(name),
                                          cli_pool.pool));
    else
        return usage();

    std::printf("model: %s\n", m.toString().c_str());
    std::printf("fit:   R2(perf)=%.3f R2(power)=%.3f\n", m.perfR2,
                m.powerR2);
    const auto d = m.directPreference();
    const auto i = m.indirectPreference();
    std::printf("direct preference (cores:ways):   %.2f:%.2f\n",
                d[0], d[1]);
    std::printf("indirect preference (cores:ways): %.2f:%.2f\n",
                i[0], i[1]);
    return 0;
}

int
cmdCurve(const wl::AppSet& apps, const std::string& name,
         double load_pct)
{
    const auto& lc = apps.lcByName(name);
    const auto curve = model::isoLoadCurve(lc, load_pct / 100.0);
    const auto best = model::minPowerPoint(lc, load_pct / 100.0);
    TextTable t({"cores", "ways", "server power (W)", "min-power"});
    for (const auto& p : curve)
        t.addRow({std::to_string(p.cores), std::to_string(p.ways),
                  fmt(p.power, 1),
                  (best && p.cores == best->cores &&
                   p.ways == best->ways)
                      ? "*"
                      : ""});
    std::printf("%s", t.render().c_str());
    return 0;
}

int
cmdMatrix(const wl::AppSet& apps, const Options& options)
{
    const cluster::ClusterEvaluator evaluator(
        apps, options.fleetConfig());
    const auto& m = evaluator.matrix();
    std::vector<std::string> header = {"BE \\ LC"};
    header.insert(header.end(), m.lcNames.begin(), m.lcNames.end());
    TextTable t(header);
    for (std::size_t i = 0; i < m.beNames.size(); ++i) {
        std::vector<std::string> row = {m.beNames[i]};
        for (std::size_t j = 0; j < m.cols(); ++j)
            row.push_back(fmt(m(i, j), 3));
        t.addRow(std::move(row));
    }
    std::printf("%s", t.render().c_str());
    return 0;
}

int
cmdPlace(const wl::AppSet& apps, const Options& options,
         const std::string& solver)
{
    cluster::PlacementKind kind = cluster::PlacementKind::Lp;
    if (solver == "hungarian")
        kind = cluster::PlacementKind::Hungarian;
    else if (solver == "exhaustive")
        kind = cluster::PlacementKind::Exhaustive;
    else if (solver == "random")
        kind = cluster::PlacementKind::Random;
    else if (solver == "greedy")
        kind = cluster::PlacementKind::Greedy;
    else if (solver != "lp")
        poco::fatal("unknown placement algorithm: " + solver);

    const cluster::ClusterEvaluator evaluator(
        apps, options.fleetConfig());
    const auto assignment = evaluator.placeBe(kind);
    const auto& m = evaluator.matrix();
    TextTable t({"BE app", "LC server", "estimated thr"});
    for (std::size_t i = 0; i < m.beNames.size(); ++i) {
        const auto j = static_cast<std::size_t>(assignment[i]);
        t.addRow({m.beNames[i], m.lcNames[j], fmt(m(i, j), 3)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("total estimated throughput: %.3f (%s)\n",
                cluster::placementValue(m, assignment),
                cluster::placementKindName(kind));
    return 0;
}

int
cmdPolicies(const wl::AppSet& apps, const Options& options)
{
    const cluster::ClusterEvaluator evaluator(
        apps, options.fleetConfig());
    TextTable t({"policy", "mean BE thr", "power util",
                 "max SLO viol", "energy (MJ)"});
    double base = 0.0;
    for (auto policy :
         {cluster::Policy::Random, cluster::Policy::Pom,
          cluster::Policy::PoColo}) {
        const auto outcome = evaluator.runPolicy(policy);
        if (policy == cluster::Policy::Random)
            base = outcome.meanBeThroughput();
        t.addRow({cluster::policyName(policy),
                  fmt(outcome.meanBeThroughput(), 3) + " (" +
                      fmtPercent(outcome.meanBeThroughput() / base -
                                 1.0) +
                      ")",
                  fmt(outcome.meanPowerUtilization(), 3),
                  fmt(outcome.maxSloViolationFraction(), 4),
                  fmt(outcome.totalEnergyJoules() / 1e6, 2)});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}

int
cmdTco(const wl::AppSet& apps, const Options& options)
{
    const cluster::ClusterEvaluator evaluator(
        apps, options.fleetConfig());
    Watts provisioned;
    for (const auto& lc : apps.lc)
        provisioned += lc.provisionedPower();
    provisioned /= static_cast<double>(apps.lc.size());

    std::vector<tco::PolicyProfile> profiles;
    for (auto policy :
         {cluster::Policy::PoColo, cluster::Policy::Pom,
          cluster::Policy::Random}) {
        const auto outcome = evaluator.runPolicy(policy);
        tco::PolicyProfile p;
        p.name = cluster::policyName(policy);
        p.throughputPerServer = 0.5 + outcome.meanBeThroughput();
        p.provisionedPowerPerServer = provisioned;
        p.averagePowerPerServer =
            outcome.meanPowerUtilization() * provisioned;
        profiles.push_back(p);
    }
    const tco::TcoModel model;
    const auto costs = model.compare(profiles);
    TextTable t({"policy", "servers", "total $M/mo", "vs first"});
    for (const auto& c : costs)
        t.addRow({c.policy, fmt(c.serversNeeded, 0),
                  fmt(c.total() / 1e6, 3),
                  fmtPercent(c.total() / costs.front().total() -
                             1.0)});
    std::printf("%s", t.render().c_str());
    return 0;
}

int
cmdFitAll(const wl::AppSet& apps, const Options& options,
          const std::string& path)
{
    const model::Profiler profiler(options.profilerConfig());
    CliPool cli_pool(options);
    const model::UtilityFitter fitter;
    model::ModelStore store;
    for (const auto& lc : apps.lc)
        store.put(lc.name(),
                  fitter.fit(profiler.profileLc(lc, cli_pool.pool)));
    for (const auto& be : apps.be)
        store.put(be.name(),
                  fitter.fit(profiler.profileBe(be, cli_pool.pool)));
    store.saveFile(path);
    std::printf("saved %zu fitted models to %s\n", store.size(),
                path.c_str());
    return 0;
}

int
cmdModels(const std::string& path)
{
    model::ModelStore store;
    store.loadFile(path);
    TextTable t({"name", "k", "R2 perf", "R2 power",
                 "indirect pref"});
    for (const auto& [name, m] : store.all()) {
        std::string pref;
        for (double p : m.indirectPreference())
            pref += (pref.empty() ? "" : ":") + fmt(p, 2);
        t.addRow({name, std::to_string(m.numResources()),
                  fmt(m.perfR2, 3), fmt(m.powerR2, 3), pref});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}

int
cmdSimulate(const wl::AppSet& apps, const Options& options,
            const std::string& lc_name, const std::string& be_name,
            const std::string& load_arg, double minutes)
{
    const wl::LcApp& lc = apps.lcByName(lc_name);
    const wl::BeApp& be = apps.beByName(be_name);

    wl::LoadTrace trace = wl::LoadTrace::constant(0.5);
    if (load_arg.size() > 4 &&
        load_arg.substr(load_arg.size() - 4) == ".csv")
        trace = wl::LoadTrace::fromCsvFile(load_arg, kMinute);
    else
        trace = wl::LoadTrace::constant(
            parseDouble(load_arg, "load percentage") / 100.0);

    const model::Profiler profiler(options.profilerConfig());
    CliPool cli_pool(options);
    const model::UtilityFitter fitter;
    const auto fitted =
        fitter.fit(profiler.profileLc(lc, cli_pool.pool));

    sim::EventQueue queue;
    server::ColocatedServer server(lc, &be, lc.provisionedPower());
    server::ServerManager manager(
        server, std::make_unique<server::PomController>(fitted),
        trace);
    manager.attach(queue);
    queue.runUntil(fromSeconds(minutes * 60.0));
    server.advanceTo(queue.now());

    std::printf("t_s,load_rps,p99_s,primary_cores,primary_ways,"
                "be_cores,be_ways,be_freq,be_duty,be_thr,power_w\n");
    for (const auto& s : manager.telemetry().all()) {
        // Down-sample to one row per second to keep output sane.
        if (s.when % kSecond != 0)
            continue;
        std::printf("%.0f,%.1f,%.6f,%d,%d,%d,%d,%.1f,%.2f,%.4f,"
                    "%.2f\n",
                    toSeconds(s.when), s.lcLoad.value(),
                    s.lcLatencyP99,
                    s.lcAlloc.cores, s.lcAlloc.ways, s.beAlloc.cores,
                    s.beAlloc.ways, s.beAlloc.freq.value(),
                    s.beAlloc.dutyCycle, s.beThroughput.value(),
                    s.power.value());
    }
    return 0;
}

int
cmdScen(const Options& options, std::size_t clusters,
        std::size_t regions)
{
    const scen::ScenarioSpec spec =
        scen::ScenarioSpec{}
            .withClusters(clusters)
            .withRegions(regions)
            .withPlatformZipf(1.1)
            .withFlashCrowds(2, 0.5, 1 * kHour)
            .withBeArrivals(4.0)
            .withFaultStorms(2, 10 * kMinute, 0.25)
            .withSeed(options.seed);
    CliPool cli_pool(options);
    const scen::Scenario scenario =
        scen::Scenario::generate(spec, cli_pool.pool);

    std::vector<std::size_t> platform_counts(
        scenario.platforms().size(), 0);
    double load_min = 1.0, load_max = 0.0, load_sum = 0.0;
    for (const scen::ClusterScenario& cluster : scenario.clusters())
        ++platform_counts[cluster.platform];
    for (const double load : scenario.epochClusterLoads()) {
        load_min = std::min(load_min, load);
        load_max = std::max(load_max, load);
        load_sum += load;
    }
    load_sum /= static_cast<double>(
        scenario.epochClusterLoads().size());

    TextTable t({"property", "value"});
    t.addRow({"clusters", std::to_string(scenario.clusterCount())});
    t.addRow({"servers", std::to_string(scenario.servers().size())});
    t.addRow({"regions", std::to_string(spec.regions)});
    t.addRow({"epochs", std::to_string(spec.epochs)});
    for (std::size_t p = 0; p < platform_counts.size(); ++p)
        t.addRow({"platform " + scenario.platforms()[p].name,
                  std::to_string(platform_counts[p])});
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.3f / %.3f / %.3f",
                  load_min, load_sum, load_max);
    t.addRow({"load min/mean/max", buffer});
    t.addRow({"control events",
              std::to_string(scenario.beArrivals().size())});
    t.addRow({"fault windows",
              std::to_string(scenario.faultStorm().windows().size())});
    std::snprintf(buffer, sizeof buffer, "%016llx",
                  static_cast<unsigned long long>(
                      scenario.fingerprint()));
    t.addRow({"fingerprint", buffer});
    std::printf("%s", t.render().c_str());
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    Options options;
    int argi = 1;
    try {
        while (argi < argc && argv[argi][0] == '-') {
            const std::string flag = argv[argi];
            if (flag == "--threads" && argi + 1 < argc) {
                options.threads =
                    parseInt(argv[++argi], "--threads");
                if (options.threads < 0)
                    return usage();
            } else if (flag == "--seed" && argi + 1 < argc) {
                options.seed = parseU64(argv[++argi], "--seed");
            } else {
                return usage();
            }
            ++argi;
        }
    } catch (const poco::FatalError& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return usage();
    }
    if (argi >= argc)
        return usage();
    const std::string cmd = argv[argi];
    std::vector<std::string> args(argv + argi + 1, argv + argc);
    const std::size_t n = args.size();

    // Run header on stderr so CSV-emitting commands stay parseable.
    std::fprintf(stderr,
                 "pocolo_cli: threads=%u%s (hardware %u) seed=%llu\n",
                 options.effectiveThreads(),
                 options.threads == 1 ? " (serial)" : "",
                 runtime::ThreadPool::hardwareThreads(),
                 static_cast<unsigned long long>(options.seed));

    try {
        const wl::AppSet apps = wl::defaultAppSet();
        if (cmd == "spec")
            return cmdSpec();
        if (cmd == "apps")
            return cmdApps(apps);
        if (cmd == "profile" && n == 2)
            return cmdProfile(apps, options, args[0], args[1]);
        if (cmd == "fit" && n == 2)
            return cmdFit(apps, options, args[0], args[1]);
        if (cmd == "curve" && n == 2)
            return cmdCurve(apps, args[0],
                            parseDouble(args[1], "load fraction"));
        if (cmd == "matrix")
            return cmdMatrix(apps, options);
        if (cmd == "place")
            return cmdPlace(apps, options, n >= 1 ? args[0] : "lp");
        if (cmd == "policies")
            return cmdPolicies(apps, options);
        if (cmd == "tco")
            return cmdTco(apps, options);
        if (cmd == "fit-all" && n == 1)
            return cmdFitAll(apps, options, args[0]);
        if (cmd == "models" && n == 1)
            return cmdModels(args[0]);
        if (cmd == "simulate" && n == 4)
            return cmdSimulate(apps, options, args[0], args[1],
                               args[2],
                               parseDouble(args[3], "minutes"));
        if (cmd == "scen" && n <= 2) {
            const int clusters =
                n >= 1 ? parseInt(args[0], "clusters") : 100;
            const int regions =
                n >= 2 ? parseInt(args[1], "regions") : 4;
            if (clusters < 1 || regions < 1)
                return usage();
            return cmdScen(options,
                           static_cast<std::size_t>(clusters),
                           static_cast<std::size_t>(regions));
        }
    } catch (const poco::FatalError& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    } catch (const std::exception& error) {
        // Any stray library exception must still fail with a clear
        // diagnostic (parse errors arrive as FatalError above).
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return usage();
}
