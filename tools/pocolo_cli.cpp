/**
 * @file
 * pocolo_cli — command-line driver for the Pocolo library.
 *
 * Subcommands:
 *   spec                         print the server platform (Table I)
 *   apps                         list the calibrated applications
 *   profile <lc|be> <name>       dump profile samples as CSV
 *   fit <lc|be> <name>           fit and print the utility model
 *   curve <lc-name> <load%>      indifference curve at a load
 *   matrix                       model-driven performance matrix
 *   place [lp|hungarian|exhaustive|random]
 *                                placement under a solver
 *   policies                     run Random/POM/POColo end to end
 *   tco                          amortized monthly TCO comparison
 *
 * Output is plain text (aligned tables) on stdout; `profile` emits
 * CSV so it can feed external plotting.
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "cluster/cluster_evaluator.hpp"
#include "model/fitter.hpp"
#include "model/indifference.hpp"
#include "model/model_store.hpp"
#include "model/profiler.hpp"
#include "server/server_manager.hpp"
#include "tco/tco_model.hpp"
#include "util/check.hpp"
#include "util/table.hpp"
#include "wl/registry.hpp"

using namespace poco;

namespace
{

int
usage()
{
    std::printf(
        "usage: pocolo_cli <command> [args]\n"
        "\n"
        "commands:\n"
        "  spec                       server platform (Table I)\n"
        "  apps                       calibrated applications\n"
        "  profile <lc|be> <name>     profile samples as CSV\n"
        "  fit <lc|be> <name>         fitted Cobb-Douglas model\n"
        "  curve <lc-name> <load%%>    indifference curve\n"
        "  matrix                     performance matrix\n"
        "  place [solver]             placement (lp, hungarian,\n"
        "                             exhaustive, random)\n"
        "  policies                   Random/POM/POColo comparison\n"
        "  tco                        monthly TCO comparison\n"
        "  fit-all <file>             fit all apps, save the model\n"
        "                             store (historical knowledge)\n"
        "  models <file>              list a saved model store\n"
        "  simulate <lc> <be> <load%%|trace.csv> <minutes>\n"
        "                             run a managed colocation and\n"
        "                             print telemetry as CSV\n");
    return 2;
}

int
cmdSpec()
{
    const sim::ServerSpec spec = sim::xeonE5_2650();
    TextTable t({"property", "value"});
    t.addRow({"name", spec.name});
    t.addRow({"cores", std::to_string(spec.cores)});
    t.addRow({"llc ways", std::to_string(spec.llcWays)});
    t.addRow({"llc size (MB)", fmt(spec.llcMegabytes, 0)});
    t.addRow({"freq range (GHz)",
              fmt(spec.freqMin, 1) + " - " + fmt(spec.freqMax, 1)});
    t.addRow({"idle power (W)", fmt(spec.idlePower, 0)});
    t.addRow({"nominal active power (W)",
              fmt(spec.nominalActivePower, 0)});
    std::printf("%s", t.render().c_str());
    return 0;
}

int
cmdApps(const wl::AppSet& apps)
{
    TextTable t({"class", "name", "peak load", "p99 SLO (s)",
                 "provisioned power (W)"});
    for (const auto& lc : apps.lc)
        t.addRow({"LC", lc.name(), fmt(lc.peakLoad(), 0),
                  fmt(lc.slo99(), 4),
                  fmt(lc.provisionedPower(), 1)});
    for (const auto& be : apps.be)
        t.addRow({"BE", be.name(), "-", "-", "-"});
    std::printf("%s", t.render().c_str());
    return 0;
}

int
cmdProfile(const wl::AppSet& apps, const std::string& cls,
           const std::string& name)
{
    const model::Profiler profiler;
    std::vector<model::ProfileSample> samples;
    if (cls == "lc")
        samples = profiler.profileLc(apps.lcByName(name));
    else if (cls == "be")
        samples = profiler.profileBe(apps.beByName(name));
    else
        return usage();
    std::printf("cores,ways,perf,power_w\n");
    for (const auto& s : samples)
        std::printf("%.0f,%.0f,%.6g,%.4f\n", s.r[0], s.r[1], s.perf,
                    s.power);
    return 0;
}

int
cmdFit(const wl::AppSet& apps, const std::string& cls,
       const std::string& name)
{
    const model::Profiler profiler;
    const model::UtilityFitter fitter;
    model::CobbDouglasUtility m;
    if (cls == "lc")
        m = fitter.fit(profiler.profileLc(apps.lcByName(name)));
    else if (cls == "be")
        m = fitter.fit(profiler.profileBe(apps.beByName(name)));
    else
        return usage();

    std::printf("model: %s\n", m.toString().c_str());
    std::printf("fit:   R2(perf)=%.3f R2(power)=%.3f\n", m.perfR2,
                m.powerR2);
    const auto d = m.directPreference();
    const auto i = m.indirectPreference();
    std::printf("direct preference (cores:ways):   %.2f:%.2f\n",
                d[0], d[1]);
    std::printf("indirect preference (cores:ways): %.2f:%.2f\n",
                i[0], i[1]);
    return 0;
}

int
cmdCurve(const wl::AppSet& apps, const std::string& name,
         double load_pct)
{
    const auto& lc = apps.lcByName(name);
    const auto curve = model::isoLoadCurve(lc, load_pct / 100.0);
    const auto best = model::minPowerPoint(lc, load_pct / 100.0);
    TextTable t({"cores", "ways", "server power (W)", "min-power"});
    for (const auto& p : curve)
        t.addRow({std::to_string(p.cores), std::to_string(p.ways),
                  fmt(p.power, 1),
                  (best && p.cores == best->cores &&
                   p.ways == best->ways)
                      ? "*"
                      : ""});
    std::printf("%s", t.render().c_str());
    return 0;
}

int
cmdMatrix(const wl::AppSet& apps)
{
    const cluster::ClusterEvaluator evaluator(apps);
    const auto& m = evaluator.matrix();
    std::vector<std::string> header = {"BE \\ LC"};
    header.insert(header.end(), m.lcNames.begin(), m.lcNames.end());
    TextTable t(header);
    for (std::size_t i = 0; i < m.beNames.size(); ++i) {
        std::vector<std::string> row = {m.beNames[i]};
        for (double v : m.value[i])
            row.push_back(fmt(v, 3));
        t.addRow(std::move(row));
    }
    std::printf("%s", t.render().c_str());
    return 0;
}

int
cmdPlace(const wl::AppSet& apps, const std::string& solver)
{
    cluster::PlacementKind kind = cluster::PlacementKind::Lp;
    if (solver == "hungarian")
        kind = cluster::PlacementKind::Hungarian;
    else if (solver == "exhaustive")
        kind = cluster::PlacementKind::Exhaustive;
    else if (solver == "random")
        kind = cluster::PlacementKind::Random;
    else if (solver != "lp")
        return usage();

    const cluster::ClusterEvaluator evaluator(apps);
    const auto assignment = evaluator.placeBe(kind);
    const auto& m = evaluator.matrix();
    TextTable t({"BE app", "LC server", "estimated thr"});
    for (std::size_t i = 0; i < m.beNames.size(); ++i) {
        const auto j = static_cast<std::size_t>(assignment[i]);
        t.addRow({m.beNames[i], m.lcNames[j], fmt(m.value[i][j], 3)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("total estimated throughput: %.3f (%s)\n",
                cluster::placementValue(m, assignment),
                cluster::placementKindName(kind));
    return 0;
}

int
cmdPolicies(const wl::AppSet& apps)
{
    const cluster::ClusterEvaluator evaluator(apps);
    TextTable t({"policy", "mean BE thr", "power util",
                 "max SLO viol", "energy (MJ)"});
    double base = 0.0;
    for (auto policy :
         {cluster::Policy::Random, cluster::Policy::Pom,
          cluster::Policy::PoColo}) {
        const auto outcome = evaluator.runPolicy(policy);
        if (policy == cluster::Policy::Random)
            base = outcome.meanBeThroughput();
        t.addRow({cluster::policyName(policy),
                  fmt(outcome.meanBeThroughput(), 3) + " (" +
                      fmtPercent(outcome.meanBeThroughput() / base -
                                 1.0) +
                      ")",
                  fmt(outcome.meanPowerUtilization(), 3),
                  fmt(outcome.maxSloViolationFraction(), 4),
                  fmt(outcome.totalEnergyJoules() / 1e6, 2)});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}

int
cmdTco(const wl::AppSet& apps)
{
    const cluster::ClusterEvaluator evaluator(apps);
    Watts provisioned = 0.0;
    for (const auto& lc : apps.lc)
        provisioned += lc.provisionedPower();
    provisioned /= static_cast<double>(apps.lc.size());

    std::vector<tco::PolicyProfile> profiles;
    for (auto policy :
         {cluster::Policy::PoColo, cluster::Policy::Pom,
          cluster::Policy::Random}) {
        const auto outcome = evaluator.runPolicy(policy);
        tco::PolicyProfile p;
        p.name = cluster::policyName(policy);
        p.throughputPerServer = 0.5 + outcome.meanBeThroughput();
        p.provisionedPowerPerServer = provisioned;
        p.averagePowerPerServer =
            outcome.meanPowerUtilization() * provisioned;
        profiles.push_back(p);
    }
    const tco::TcoModel model;
    const auto costs = model.compare(profiles);
    TextTable t({"policy", "servers", "total $M/mo", "vs first"});
    for (const auto& c : costs)
        t.addRow({c.policy, fmt(c.serversNeeded, 0),
                  fmt(c.total() / 1e6, 3),
                  fmtPercent(c.total() / costs.front().total() -
                             1.0)});
    std::printf("%s", t.render().c_str());
    return 0;
}

int
cmdFitAll(const wl::AppSet& apps, const std::string& path)
{
    const model::Profiler profiler;
    const model::UtilityFitter fitter;
    model::ModelStore store;
    for (const auto& lc : apps.lc)
        store.put(lc.name(), fitter.fit(profiler.profileLc(lc)));
    for (const auto& be : apps.be)
        store.put(be.name(), fitter.fit(profiler.profileBe(be)));
    store.saveFile(path);
    std::printf("saved %zu fitted models to %s\n", store.size(),
                path.c_str());
    return 0;
}

int
cmdModels(const std::string& path)
{
    model::ModelStore store;
    store.loadFile(path);
    TextTable t({"name", "k", "R2 perf", "R2 power",
                 "indirect pref"});
    for (const auto& [name, m] : store.all()) {
        std::string pref;
        for (double p : m.indirectPreference())
            pref += (pref.empty() ? "" : ":") + fmt(p, 2);
        t.addRow({name, std::to_string(m.numResources()),
                  fmt(m.perfR2, 3), fmt(m.powerR2, 3), pref});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}

int
cmdSimulate(const wl::AppSet& apps, const std::string& lc_name,
            const std::string& be_name, const std::string& load_arg,
            double minutes)
{
    const wl::LcApp& lc = apps.lcByName(lc_name);
    const wl::BeApp& be = apps.beByName(be_name);

    wl::LoadTrace trace = wl::LoadTrace::constant(0.5);
    if (load_arg.size() > 4 &&
        load_arg.substr(load_arg.size() - 4) == ".csv")
        trace = wl::LoadTrace::fromCsvFile(load_arg, kMinute);
    else
        trace = wl::LoadTrace::constant(std::stod(load_arg) / 100.0);

    const model::Profiler profiler;
    const model::UtilityFitter fitter;
    const auto fitted = fitter.fit(profiler.profileLc(lc));

    sim::EventQueue queue;
    server::ColocatedServer server(lc, &be, lc.provisionedPower());
    server::ServerManager manager(
        server, std::make_unique<server::PomController>(fitted),
        trace);
    manager.attach(queue);
    queue.runUntil(fromSeconds(minutes * 60.0));
    server.advanceTo(queue.now());

    std::printf("t_s,load_rps,p99_s,primary_cores,primary_ways,"
                "be_cores,be_ways,be_freq,be_duty,be_thr,power_w\n");
    for (const auto& s : manager.telemetry().all()) {
        // Down-sample to one row per second to keep output sane.
        if (s.when % kSecond != 0)
            continue;
        std::printf("%.0f,%.1f,%.6f,%d,%d,%d,%d,%.1f,%.2f,%.4f,"
                    "%.2f\n",
                    toSeconds(s.when), s.lcLoad, s.lcLatencyP99,
                    s.lcAlloc.cores, s.lcAlloc.ways, s.beAlloc.cores,
                    s.beAlloc.ways, s.beAlloc.freq,
                    s.beAlloc.dutyCycle, s.beThroughput, s.power);
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];

    try {
        const wl::AppSet apps = wl::defaultAppSet();
        if (cmd == "spec")
            return cmdSpec();
        if (cmd == "apps")
            return cmdApps(apps);
        if (cmd == "profile" && argc == 4)
            return cmdProfile(apps, argv[2], argv[3]);
        if (cmd == "fit" && argc == 4)
            return cmdFit(apps, argv[2], argv[3]);
        if (cmd == "curve" && argc == 4)
            return cmdCurve(apps, argv[2], std::stod(argv[3]));
        if (cmd == "matrix")
            return cmdMatrix(apps);
        if (cmd == "place")
            return cmdPlace(apps, argc >= 3 ? argv[2] : "lp");
        if (cmd == "policies")
            return cmdPolicies(apps);
        if (cmd == "tco")
            return cmdTco(apps);
        if (cmd == "fit-all" && argc == 3)
            return cmdFitAll(apps, argv[2]);
        if (cmd == "models" && argc == 3)
            return cmdModels(argv[2]);
        if (cmd == "simulate" && argc == 6)
            return cmdSimulate(apps, argv[2], argv[3], argv[4],
                               std::stod(argv[5]));
    } catch (const poco::FatalError& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return usage();
}
