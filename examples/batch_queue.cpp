/**
 * @file
 * Draining a batch queue on a power-constrained cluster.
 *
 * The nightly scenario the §V-G extensions were built for: more
 * best-effort jobs than servers. The operator
 *
 *   1. builds the performance matrix from fitted models,
 *   2. runs admission control (admitAndPlace) to pick which jobs
 *      start now and where,
 *   3. time-shares each server's queue with SJF as jobs finish.
 *
 * Build & run:  ./build/examples/batch_queue
 */

#include <cstdio>
#include <memory>

#include "cluster/cluster_evaluator.hpp"
#include "server/be_schedule.hpp"
#include "util/table.hpp"

using namespace poco;

int
main()
{
    const wl::AppSet apps = wl::defaultAppSet();
    const cluster::ClusterEvaluator evaluator(apps);

    // Tonight's queue: six jobs, two of each heavy type — more jobs
    // than the four servers.
    struct QueuedJob
    {
        std::string name;
        std::string app;
        double work;
    };
    const std::vector<QueuedJob> queue = {
        {"pagerank-daily", "graph", 60.0},
        {"pagerank-weekly", "graph", 110.0},
        {"lstm-train", "lstm", 45.0},
        {"backup-compress", "pbzip2", 70.0},
        {"rnn-train", "rnn", 40.0},
        {"logs-compress", "pbzip2", 35.0},
    };

    // Admission matrix: rows are queued jobs (by their app's fitted
    // utility), columns the four LC servers.
    std::vector<cluster::BeCandidateModel> candidates;
    for (const auto& job : queue) {
        for (const auto& be : evaluator.beModels())
            if (be.name == job.app)
                candidates.push_back({job.name, be.utility});
    }
    const auto matrix = cluster::buildPerformanceMatrix(
        candidates, evaluator.lcModels(), apps.spec);
    const auto admitted = cluster::admitAndPlace(matrix);

    std::printf("admission decision (%zu jobs, %zu servers):\n",
                queue.size(), evaluator.lcModels().size());
    TextTable adm({"job", "app", "work", "decision"});
    // Jobs per server for the scheduling phase.
    std::vector<std::vector<server::BeJob>> per_server(
        evaluator.lcModels().size());
    for (std::size_t i = 0; i < queue.size(); ++i) {
        std::string decision = "wait (next round)";
        if (admitted[i] >= 0) {
            const auto j = static_cast<std::size_t>(admitted[i]);
            decision = "run on " + evaluator.lcModels()[j].name;
            per_server[j].push_back(server::BeJob{
                queue[i].name, &apps.beByName(queue[i].app),
                queue[i].work});
        }
        adm.addRow({queue[i].name, queue[i].app,
                    fmt(queue[i].work, 0), decision});
    }
    std::printf("%s\n", adm.render().c_str());

    // Waiting jobs join the queue of the server whose co-runner
    // model values them most (simple second round).
    for (std::size_t i = 0; i < queue.size(); ++i) {
        if (admitted[i] >= 0)
            continue;
        std::size_t best = 0;
        for (std::size_t j = 1; j < matrix.cols(); ++j)
            if (matrix(i, j) > matrix(i, best))
                best = j;
        per_server[best].push_back(server::BeJob{
            queue[i].name, &apps.beByName(queue[i].app),
            queue[i].work});
    }

    // Drain each server's queue with SJF beside its primary.
    std::printf("draining (SJF per server, primaries at their "
                "night-time 20%% load):\n");
    TextTable drain({"server", "jobs", "makespan (s)",
                     "mean completion (s)", "SLO violations"});
    for (std::size_t j = 0; j < per_server.size(); ++j) {
        if (per_server[j].empty())
            continue;
        server::SchedulerConfig config;
        config.policy = server::SchedulePolicy::Sjf;
        const wl::LcApp& lc = apps.lc[j];
        const auto result = server::runBeSchedule(
            lc, per_server[j], lc.provisionedPower(),
            std::make_unique<server::PomController>(
                evaluator.lcModels()[j].utility),
            wl::LoadTrace::constant(0.2), 2 * kHour, config);
        drain.addRow({lc.name(),
                      std::to_string(per_server[j].size()),
                      fmt(toSeconds(result.makespan), 0),
                      fmt(result.meanCompletionSeconds(), 0),
                      fmt(result.stats.sloViolationFraction(), 4)});
    }
    std::printf("%s", drain.render().c_str());
    return 0;
}
