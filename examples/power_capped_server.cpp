/**
 * @file
 * Anatomy of a power-capped server: a minute-by-minute view of the
 * management loops reacting to a load spike.
 *
 * A sphinx primary starts at 20% load with PageRank harvesting the
 * spare; at t=4 min the load jumps to 70% and at t=8 min it falls
 * back. The example prints the telemetry so you can watch the POM
 * controller re-size the primary along its min-power expansion path
 * and the 100 ms throttler keep the socket under its cap.
 *
 * Build & run:  ./build/examples/power_capped_server
 */

#include <cstdio>
#include <memory>

#include "model/fitter.hpp"
#include "model/profiler.hpp"
#include "server/server_manager.hpp"
#include "util/table.hpp"
#include "wl/registry.hpp"

using namespace poco;

int
main()
{
    const wl::AppSet apps = wl::defaultAppSet();
    const wl::LcApp& sphinx = apps.lcByName("sphinx");
    const wl::BeApp& pagerank = apps.beByName("graph");
    const Watts cap = sphinx.provisionedPower();

    const model::Profiler profiler;
    const model::UtilityFitter fitter;
    const auto sphinx_model =
        fitter.fit(profiler.profileLc(sphinx));

    // Load schedule: 20% -> 70% -> 20%, four minutes each.
    const auto trace = wl::LoadTrace::stepped({0.2, 0.7, 0.2},
                                              4 * kMinute);

    sim::EventQueue queue;
    server::ColocatedServer server(sphinx, &pagerank, cap);
    server::ServerManager manager(
        server,
        std::make_unique<server::PomController>(sphinx_model),
        trace);
    manager.attach(queue);

    std::printf("sphinx + pagerank on a %.0f W server; load steps "
                "20%% -> 70%% -> 20%%\n\n",
                cap.value());
    TextTable table({"t", "load%", "primary", "secondary",
                     "power (W)", "slack", "BE thr"});
    for (int minute = 0; minute <= 12; ++minute) {
        queue.runUntil(minute * kMinute);
        server.advanceTo(queue.now());
        table.addRow(
            {std::to_string(minute) + "m",
             fmt(100.0 * server.load() / sphinx.peakLoad(), 0),
             server.primaryAlloc().toString(),
             server.beAlloc().toString(), fmt(server.power(), 1),
             fmt(server.slack99(), 2),
             fmt(server.beThroughput(), 3)});
    }
    std::printf("%s", table.render().c_str());

    const auto& stats = server.stats();
    std::printf("\ntotals: %.1f W average (%.0f%% of cap), %.2f kJ, "
                "BE work %.1f units, SLO violations %.2f%% of time, "
                "throttled %.1f%% of time\n",
                stats.averagePower().value(),
                100.0 * stats.averagePower() / cap,
                stats.energyJoules.value() / 1000.0,
                stats.beWorkDone,
                100.0 * stats.sloViolationFraction(),
                100.0 * stats.cappedFraction());
    return 0;
}
