/**
 * @file
 * Colocation advisor: the cluster-operator workflow.
 *
 * Given a fleet of latency-critical servers and a queue of
 * best-effort candidates, the advisor fits utility models, builds
 * the performance matrix, solves the assignment, and quantifies the
 * benefit of following its advice versus assigning at random — the
 * exact decision a private-cloud scheduler faces nightly when batch
 * work arrives.
 *
 * Build & run:  ./build/examples/colocation_advisor
 */

#include <cstdio>

#include "cluster/cluster_evaluator.hpp"
#include "util/table.hpp"

using namespace poco;

int
main()
{
    const wl::AppSet apps = wl::defaultAppSet();
    std::printf("fleet: %zu latency-critical servers, %zu "
                "best-effort candidates\n\n",
                apps.lc.size(), apps.be.size());

    // The evaluator profiles and fits every application once.
    const cluster::ClusterEvaluator advisor(apps);

    // The model-driven performance matrix: estimated BE throughput
    // beside each server, averaged over the primary's load range.
    const auto& m = advisor.matrix();
    std::printf("estimated throughput matrix:\n");
    std::vector<std::string> header = {"BE \\ LC"};
    header.insert(header.end(), m.lcNames.begin(), m.lcNames.end());
    TextTable matrix_table(header);
    for (std::size_t i = 0; i < m.beNames.size(); ++i) {
        std::vector<std::string> row = {m.beNames[i]};
        for (std::size_t j = 0; j < m.cols(); ++j)
            row.push_back(fmt(m(i, j), 3));
        matrix_table.addRow(std::move(row));
    }
    std::printf("%s\n", matrix_table.render().c_str());

    // The recommendation (LP assignment; Hungarian and exhaustive
    // give the same answer — see the tests).
    const auto assignment =
        advisor.placeBe(cluster::PlacementKind::Lp);
    std::printf("recommended placement:\n");
    TextTable rec({"BE app", "-> LC server", "why"});
    for (std::size_t i = 0; i < m.beNames.size(); ++i) {
        const auto j = static_cast<std::size_t>(assignment[i]);
        const auto be_pref =
            advisor.beModels()[i].utility.indirectPreference();
        const auto lc_pref =
            advisor.lcModels()[j].utility.indirectPreference();
        rec.addRow({m.beNames[i], m.lcNames[j],
                    "BE wants cores " + fmtPercent(be_pref[0], 0) +
                        ", LC leaves cores (keeps " +
                        fmtPercent(lc_pref[0], 0) + ")"});
    }
    std::printf("%s\n", rec.render().c_str());

    // Quantify: run the recommendation and the random baseline.
    const auto advised = advisor.runAssignment(
        assignment, cluster::ManagerKind::Pom);
    const auto random =
        advisor.runRandomAveraged(cluster::ManagerKind::Heracles);

    std::printf("realized over the 10-90%% load sweep:\n");
    TextTable outcome({"metric", "random ops", "advisor", "delta"});
    outcome.addRow(
        {"cluster BE throughput (units/s)",
         fmt(random.totalBeThroughput(), 3),
         fmt(advised.totalBeThroughput(), 3),
         fmtPercent(advised.totalBeThroughput() /
                        random.totalBeThroughput() -
                    1.0)});
    outcome.addRow({"mean power utilization",
                    fmt(random.meanPowerUtilization(), 3),
                    fmt(advised.meanPowerUtilization(), 3),
                    fmtPercent(advised.meanPowerUtilization() /
                                   random.meanPowerUtilization() -
                               1.0)});
    outcome.addRow(
        {"energy per unit of BE work (kJ)",
         fmt(random.totalEnergyJoules() /
                 random.totalBeThroughput() / 1000.0,
             1),
         fmt(advised.totalEnergyJoules() /
                 advised.totalBeThroughput() / 1000.0,
             1),
         fmtPercent(advised.totalEnergyJoules() /
                        advised.totalBeThroughput() /
                        (random.totalEnergyJoules() /
                         random.totalBeThroughput()) -
                    1.0)});
    outcome.addRow({"worst SLO violation",
                    fmt(random.maxSloViolationFraction(), 4),
                    fmt(advised.maxSloViolationFraction(), 4), "-"});
    std::printf("%s", outcome.render().c_str());
    return 0;
}
