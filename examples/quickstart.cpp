/**
 * @file
 * Quickstart: the whole Pocolo pipeline in ~80 lines.
 *
 *  1. Take a latency-critical app (web search) and a best-effort
 *     candidate (PageRank).
 *  2. Profile both and fit Cobb-Douglas indirect utility models.
 *  3. Read off the power-aware resource preferences.
 *  4. Ask the model for the primary's min-power allocation at the
 *     current load.
 *  5. Run the managed colocation and report what happened.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>
#include <memory>

#include "model/demand.hpp"
#include "model/fitter.hpp"
#include "model/profiler.hpp"
#include "server/server_manager.hpp"
#include "wl/registry.hpp"

using namespace poco;

int
main()
{
    // The calibrated evaluation applications on a simulated
    // Xeon E5-2650 (12 cores, 20 LLC ways, 1.2-2.2 GHz).
    const wl::AppSet apps = wl::defaultAppSet();
    const wl::LcApp& search = apps.lcByName("xapian");
    const wl::BeApp& pagerank = apps.beByName("graph");

    // 1-2. Profile (allocation sweep through the observable
    // surface) and fit the indirect utility models.
    const model::Profiler profiler;
    const model::UtilityFitter fitter;
    const auto search_model =
        fitter.fit(profiler.profileLc(search));
    const auto pagerank_model =
        fitter.fit(profiler.profileBe(pagerank));

    std::printf("fitted models (R2 perf/power):\n");
    std::printf("  %-8s %s  [%.2f/%.2f]\n", search.name().c_str(),
                search_model.toString().c_str(), search_model.perfR2,
                search_model.powerR2);
    std::printf("  %-8s %s  [%.2f/%.2f]\n", pagerank.name().c_str(),
                pagerank_model.toString().c_str(),
                pagerank_model.perfR2, pagerank_model.powerR2);

    // 3. Power-aware preferences: performance-per-watt of cores vs
    // LLC ways (the paper's alpha_j / p_j).
    const auto sp = search_model.indirectPreference();
    const auto pp = pagerank_model.indirectPreference();
    std::printf("\nindirect preferences (cores : ways)\n");
    std::printf("  %-8s %.2f : %.2f\n", search.name().c_str(), sp[0],
                sp[1]);
    std::printf("  %-8s %.2f : %.2f  -> complementary, good "
                "co-runner\n",
                pagerank.name().c_str(), pp[0], pp[1]);

    // 4. Min-power allocation for the primary at 30% load.
    const Rps load = 0.3 * search.peakLoad();
    const auto plan = model::minPowerAllocationFor(
        search_model, load.value(), apps.spec);
    std::printf("\nmin-power allocation for %.0f req/s: %s "
                "(modeled %.1f W)\n",
                load.value(), plan->alloc.toString().c_str(),
                plan->modeledPower.value());

    // 5. Run the managed colocation for 10 simulated minutes.
    const auto result = server::runServerScenario(
        search, &pagerank, search.provisionedPower(),
        std::make_unique<server::PomController>(search_model),
        wl::LoadTrace::constant(0.3), 10 * kMinute);

    std::printf("\nafter 10 simulated minutes:\n");
    std::printf("  best-effort throughput : %.3f units/s\n",
                result.stats.averageBeThroughput().value());
    std::printf("  server power           : %.1f W of %.1f W cap "
                "(%.0f%%)\n",
                result.stats.averagePower().value(),
                search.provisionedPower().value(),
                100.0 * result.powerUtilization);
    std::printf("  primary latency slack  : %.0f%% (SLO violations: "
                "%.2f%%)\n",
                100.0 * result.averageSlack,
                100.0 * result.stats.sloViolationFraction());
    return 0;
}
