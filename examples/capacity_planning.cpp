/**
 * @file
 * Capacity planning what-if: when does aggressive power
 * under-provisioning pay?
 *
 * The paper's TCO analysis (Fig. 15) uses one cost point
 * ($9/W infrastructure, 7 c/kWh energy). A capacity planner wants
 * the whole map: this example sweeps both prices and reports which
 * provisioning strategy — right-sized 150 W with POColo, or
 * generous 185 W with a power-unaware baseline — is cheaper at each
 * point, and by how much.
 *
 * Build & run:  ./build/examples/capacity_planning
 */

#include <cstdio>

#include "cluster/cluster_evaluator.hpp"
#include "tco/tco_model.hpp"
#include "util/table.hpp"

using namespace poco;

int
main()
{
    const wl::AppSet apps = wl::defaultAppSet();
    const cluster::ClusterEvaluator evaluator(apps);

    // Measure both operating points once.
    const auto pocolo =
        evaluator.runPolicy(cluster::Policy::PoColo);
    const auto nocap = evaluator.runRandomAveraged(
        cluster::ManagerKind::Heracles, Watts{185.0});

    Watts provisioned;
    for (const auto& lc : apps.lc)
        provisioned += lc.provisionedPower();
    provisioned /= static_cast<double>(apps.lc.size());

    tco::PolicyProfile tight;
    tight.name = "POColo@150W";
    tight.throughputPerServer = 0.5 + pocolo.meanBeThroughput();
    tight.provisionedPowerPerServer = provisioned;
    tight.averagePowerPerServer =
        pocolo.meanPowerUtilization() * provisioned;

    tco::PolicyProfile generous;
    generous.name = "Random@185W";
    generous.throughputPerServer = 0.5 + nocap.meanBeThroughput();
    generous.provisionedPowerPerServer = Watts{185.0};
    generous.averagePowerPerServer =
        nocap.meanPowerUtilization() * Watts{185.0};

    std::printf("monthly TCO advantage of POColo@150W over "
                "Random@185W (positive = POColo cheaper)\n\n");

    TextTable table({"infra $/W \\ energy c/kWh", "4", "7", "12",
                     "20"});
    for (double infra : {3.0, 6.0, 9.0, 15.0, 25.0}) {
        std::vector<std::string> row = {fmt(infra, 0)};
        for (double cents : {4.0, 7.0, 12.0, 20.0}) {
            tco::TcoParams params;
            params.powerInfraCostPerWatt = infra;
            params.energyCostPerKwh = cents / 100.0;
            const tco::TcoModel model(params);
            const auto costs = model.compare({tight, generous});
            const double saving =
                1.0 - costs[0].total() / costs[1].total();
            row.push_back(fmtPercent(saving));
        }
        table.addRow(std::move(row));
    }
    std::printf("%s", table.render().c_str());

    std::printf(
        "\nreading the map: the advantage grows with the price of "
        "provisioned watts\n(vertical) because POColo needs 35 W "
        "less infrastructure per server, and\nwith the energy price "
        "(horizontal) because it extracts more work per joule.\n");
    return 0;
}
